"""Shared infrastructure for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation section has a benchmark
module here.  The species pairs are synthetic (see DESIGN.md): four pairs
at increasing phylogenetic distance stand in for dm6-droSim1, dm6-droYak2,
dm6-dp4 and ce11-cb4.  Both aligners run once per pair (session-scoped
cache); the individual benchmarks derive their tables from those runs.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1.0) to grow/shrink the
synthetic genomes; shapes are stable across scales, absolute numbers grow
with genome size.  ``REPRO_BENCH_WORKERS`` (default 1) runs the pair
alignments through the parallel execution engine — the alignments are
byte-identical by construction, only the wall-clock columns move.

Every pair run is traced with :mod:`repro.obs`; after all pairs have
run, an aggregate perf artifact with per-stage wall-clock and cells/s
for both aligners is written to ``BENCH_PIPELINE.json`` at the repo
root, giving later PRs a performance trajectory to compare against.
"""

import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import pytest

from repro.chain import build_chains
from repro.core import DarwinWGA
from repro.genome import make_species_pair
from repro.lastz import LastzAligner
from repro.obs import Tracer, run_report

#: Aggregate perf artifact written after the pair runs complete.
BENCH_PIPELINE_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_PIPELINE.json"
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Synthetic stand-ins for the paper's four species pairs, ordered from
#: closest to most distant (Figure 8 distances in substitutions/site).
PAIR_SPECS = (
    ("dm6-droSim1", 0.11, 42),
    ("dm6-droYak2", 0.23, 43),
    ("dm6-dp4", 0.55, 44),
    ("ce11-cb4", 1.32, 45),
)

GENOME_LENGTH = int(30000 * SCALE)
EXON_COUNT = max(4, int(14 * SCALE))


@dataclass
class PairRun:
    """Everything the benchmarks need about one species pair."""

    name: str
    distance: float
    pair: object
    darwin: object
    lastz: object
    darwin_chains: list
    lastz_chains: list
    #: Structured run reports (repro.obs format), one per aligner.
    darwin_trace: dict = field(default_factory=dict)
    lastz_trace: dict = field(default_factory=dict)


#: Mosaic-model parameters (see DESIGN.md): ~35% of the genome alignable
#: in ~300 bp islands, indel density ~1 event/7 substitutions (saturating
#: with distance), plus codon-aligned indels inside exons.
PAIR_MODEL = dict(
    alignable_fraction=0.35,
    island_mean_length=300,
    island_distance_cap=0.4,
    indel_per_substitution=0.14,
    exon_indel_per_substitution=0.05,
)


def _chain_order(alignments):
    """Sort alignments so ``build_chains(..., presorted=True)`` is exact.

    A stable global sort on (partition key, target_start, query_start)
    reproduces, within each (target, query, strand) partition, precisely
    the order the chainer's own per-partition re-sort would produce.
    """
    return sorted(
        alignments,
        key=lambda a: (
            a.target_name,
            a.query_name,
            a.strand,
            a.target_start,
            a.query_start,
        ),
    )


def _run_pair(name, distance, seed):
    pair = make_species_pair(
        GENOME_LENGTH,
        distance,
        np.random.default_rng(seed),
        exon_count=EXON_COUNT,
        **PAIR_MODEL,
    )
    target, query = pair.target.genome, pair.query.genome
    darwin_tracer = Tracer()
    with DarwinWGA(tracer=darwin_tracer, workers=WORKERS) as aligner:
        darwin = aligner.align(target, query)
    lastz_tracer = Tracer()
    with LastzAligner(tracer=lastz_tracer, workers=WORKERS) as aligner:
        lastz = aligner.align(target, query)
    darwin_chains = build_chains(
        _chain_order(darwin.alignments),
        tracer=darwin_tracer,
        presorted=True,
    )
    lastz_chains = build_chains(
        _chain_order(lastz.alignments),
        tracer=lastz_tracer,
        presorted=True,
    )
    meta = {"pair": name, "distance": distance}
    return PairRun(
        name=name,
        distance=distance,
        pair=pair,
        darwin=darwin,
        lastz=lastz,
        darwin_chains=darwin_chains,
        lastz_chains=lastz_chains,
        darwin_trace=run_report(
            darwin_tracer, result=darwin, meta=dict(meta, aligner="darwin")
        ),
        lastz_trace=run_report(
            lastz_tracer, result=lastz, meta=dict(meta, aligner="lastz")
        ),
    )


def _stage_perf(trace):
    """Wall-clock + work rates per stage from one run report."""
    stages = {}
    for stage_name, stage in trace["stages"].items():
        stages[stage_name] = {
            "calls": stage["count"],
            "wall_seconds": stage["seconds"],
            "counters": stage["counters"],
            "rates": stage["rates"],
        }
    return stages


def write_bench_pipeline(runs, path=BENCH_PIPELINE_PATH):
    """Persist the aggregate perf artifact for all pair runs.

    Sections written by other benchmark modules (``kernels``,
    ``parallel_scaling``, ``fault_overhead``, ``obs_overhead``) are
    carried over from an existing artifact rather than clobbered, so a
    partial benchmark run never silently drops a sibling's section.
    """
    try:
        previous = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        previous = {}
    artifact = {
        "version": 1,
        "scale": SCALE,
        "workers": WORKERS,
        "genome_length": GENOME_LENGTH,
        "python": platform.python_version(),
        "pairs": {
            run.name: {
                "distance": run.distance,
                "darwin": {
                    "workload": run.darwin_trace.get("workload", {}),
                    "funnel": run.darwin_trace.get("funnel", {}),
                    "stages": _stage_perf(run.darwin_trace),
                },
                "lastz": {
                    "workload": run.lastz_trace.get("workload", {}),
                    "funnel": run.lastz_trace.get("funnel", {}),
                    "stages": _stage_perf(run.lastz_trace),
                },
            }
            for run in runs
        },
    }
    carried_sections = (
        "kernels",
        "parallel_scaling",
        "fault_overhead",
        "obs_overhead",
        "lint",
        "serve",
    )
    for carried in carried_sections:
        if carried in previous:
            artifact[carried] = previous[carried]
    Path(path).write_text(json.dumps(artifact, indent=2, sort_keys=True))
    return artifact


@pytest.fixture(scope="session")
def pair_runs():
    """Both aligners on all four species pairs (cached per session).

    As a side effect, writes the aggregate ``BENCH_PIPELINE.json`` perf
    artifact (per-stage wall-clock and cells/s for every pair).
    """
    runs = [_run_pair(*spec) for spec in PAIR_SPECS]
    write_bench_pipeline(runs)
    return runs


@pytest.fixture(scope="session")
def distant_run(pair_runs):
    """The most distant pair (the ce11-cb4 stand-in)."""
    return pair_runs[-1]


@pytest.fixture(scope="session")
def close_run(pair_runs):
    return pair_runs[0]


def print_table(title, headers, rows):
    """Render a paper-style table to stdout (captured with ``-s``)."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
