"""Ablation: banded-Smith-Waterman band size ``B``.

DESIGN.md calls out the band size as the filter's sensitivity/cost dial:
a wider band tolerates larger diagonal drift (more indels) inside a
filter tile but costs proportionally more cells — and more BSW-array
cycles.  The sweep reports anchors recovered and modelled filter cost per
band on the distant pair.
"""

import pytest

from repro.core import DarwinWGAConfig, FilterParams, gapped_filter
from repro.hw import BswArrayModel, SystolicArrayConfig
from repro.seed import SeedIndex, dsoft_seed

from .conftest import print_table

BANDS = (4, 16, 32, 64)


@pytest.mark.benchmark(group="ablation")
def test_ablation_filter_band(benchmark, distant_run):
    config = DarwinWGAConfig()
    target = distant_run.pair.target.genome
    query = distant_run.pair.query.genome

    def evaluate():
        index = SeedIndex.build(target, config.seed)
        seeding = dsoft_seed(index, query, config.dsoft)
        results = []
        for band in BANDS:
            params = FilterParams(
                tile_size=config.filtering.tile_size,
                band=band,
                threshold=config.filtering.threshold,
            )
            filtered = gapped_filter(
                target,
                query,
                seeding.target_positions,
                seeding.query_positions,
                config.scoring,
                params,
            )
            results.append((band, len(filtered.anchors), filtered.cells))
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    array = SystolicArrayConfig(n_pe=64, clock_hz=1e9)
    rows = []
    for band, anchors, cells in results:
        cycles = BswArrayModel(
            config=array, tile_size=320, band=band
        ).tile_cycles()
        rows.append((band, anchors, cells, cycles))
    print_table(
        "Ablation: filter band size (distant pair)",
        ["band B", "anchors", "filter cells", "cycles/tile"],
        rows,
    )

    anchors = [a for _, a, _ in results]
    cells = [c for _, _, c in results]
    # Wider bands never lose anchors (monotone sensitivity) and always
    # cost more cells.
    assert anchors == sorted(anchors)
    assert cells == sorted(cells)
    # The default band (32) already recovers nearly all band-64 anchors.
    assert anchors[2] >= 0.9 * anchors[3]
