"""Fault-free overhead of the resilience machinery.

Two measurements, both merged into ``BENCH_PIPELINE.json`` under
``fault_overhead``:

* **Supervised dispatch** — the same task batch pushed through the raw
  ``ExecutionEngine.submit`` path and through the resilient
  ``dispatch``/``result`` path with no fault plan.  The delta is pure
  bookkeeping (ticket tracking, deadline checks, injection probes).
* **Checkpoint journaling** — the same assembly pair aligned with and
  without a run manifest.  The delta is digest hashing plus one
  fsync'd journal line per chromosome-pair unit.

The target is <5% fault-free overhead for each; wall-clock noise on
tiny containers can exceed that, so the hard assertions here are on
output identity and the artifact carries the measured numbers.

Methodology notes: the pool is warmed (every worker has executed a
task) before either dispatch path is timed — an unpaid pool startup
lands entirely on whichever path runs first and once produced a
nonsensical −29% "overhead".  Overheads are recorded *signed*; the
``repro bench check`` gate fails only on slowdowns beyond the target
and flags suspiciously negative values as measurement artifacts.
"""

import json
import time

import numpy as np
import pytest

from repro.core.pipeline import align_assemblies
from repro.genome import Assembly, Sequence, make_species_pair
from repro.parallel import ExecutionEngine

from .conftest import (
    BENCH_PIPELINE_PATH,
    EXON_COUNT,
    GENOME_LENGTH,
    PAIR_MODEL,
    PAIR_SPECS,
    print_table,
)

OVERHEAD_TARGET = 0.05
WORKERS = 2
DISPATCH_TASKS = 64
TASK_SIZE = 200_000
WARMUP_TASKS = WORKERS * 4
#: Repetitions per timed path; the minimum is reported.  One-shot
#: timings of ~40 ms dispatch sweeps are dominated by scheduler noise.
DISPATCH_REPEATS = 3


def dot_task(size, lane):
    """A worker task heavy enough that dispatch cost is the signal."""
    values = np.arange(size, dtype=np.float64) + lane
    return float(values @ values)


def _record_overhead(pair_name, entry):
    """Merge the overhead measurements into the aggregate artifact."""
    try:
        artifact = json.loads(BENCH_PIPELINE_PATH.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    artifact["fault_overhead"] = dict(
        entry,
        pair=pair_name,
        genome_length=GENOME_LENGTH,
        workers=WORKERS,
        warmup_tasks=WARMUP_TASKS,
        dispatch_repeats=DISPATCH_REPEATS,
        target=OVERHEAD_TARGET,
        identical_output=True,
    )
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True)
    )


def _split_assembly(genome, prefix):
    half = len(genome.codes) // 2
    return Assembly(
        name=prefix,
        chromosomes=[
            Sequence(genome.codes[:half], name=f"{prefix}1"),
            Sequence(genome.codes[half:], name=f"{prefix}2"),
        ],
    )


def _warm_pool(engine):
    """Pay pool startup before any timed path (see module docstring)."""
    futures = [
        engine.submit(dot_task, 1024, lane) for lane in range(WARMUP_TASKS)
    ]
    for future in futures:
        future.result()


def _time_dispatch(engine, supervised):
    best = None
    for _ in range(DISPATCH_REPEATS):
        start = time.perf_counter()
        if supervised:
            tickets = [
                engine.dispatch(dot_task, TASK_SIZE, lane, key=f"lane{lane}")
                for lane in range(DISPATCH_TASKS)
            ]
            values = [engine.result(t) for t in tickets]
        else:
            futures = [
                engine.submit(dot_task, TASK_SIZE, lane)
                for lane in range(DISPATCH_TASKS)
            ]
            values = [f.result() for f in futures]
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return values, best


@pytest.mark.benchmark(group="fault_overhead")
def test_fault_free_overhead(benchmark, tmp_path):
    name, distance, seed = PAIR_SPECS[-1]
    pair = make_species_pair(
        GENOME_LENGTH,
        distance,
        np.random.default_rng(seed),
        exon_count=EXON_COUNT,
        **PAIR_MODEL,
    )
    target = _split_assembly(pair.target.genome, "t")
    query = _split_assembly(pair.query.genome, "q")

    def sweep():
        timings = {}
        with ExecutionEngine(WORKERS) as engine:
            _warm_pool(engine)
            raw_values, timings["dispatch_raw"] = _time_dispatch(
                engine, supervised=False
            )
            supervised_values, timings["dispatch_supervised"] = (
                _time_dispatch(engine, supervised=True)
            )
        assert supervised_values == raw_values
        plain = align_assemblies(target, query, workers=WORKERS)
        start = time.perf_counter()
        align_assemblies(target, query, workers=WORKERS)
        timings["pipeline_plain"] = time.perf_counter() - start
        start = time.perf_counter()
        journaled = align_assemblies(
            target,
            query,
            workers=WORKERS,
            checkpoint=tmp_path / "bench.manifest",
        )
        timings["pipeline_journaled"] = time.perf_counter() - start
        assert journaled.alignments == plain.alignments
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    dispatch_overhead = (
        timings["dispatch_supervised"] / timings["dispatch_raw"] - 1.0
    )
    journal_overhead = (
        timings["pipeline_journaled"] / timings["pipeline_plain"] - 1.0
    )
    _record_overhead(
        name,
        {
            "wall_seconds": dict(timings),
            "overhead": {
                "dispatch_supervised": dispatch_overhead,
                "pipeline_journaled": journal_overhead,
            },
        },
    )

    print_table(
        f"Fault-free resilience overhead ({name}, {GENOME_LENGTH:,} bp, "
        f"target <{OVERHEAD_TARGET:.0%})",
        ("comparison", "baseline s", "resilient s", "overhead"),
        [
            (
                "supervised dispatch",
                f"{timings['dispatch_raw']:.2f}",
                f"{timings['dispatch_supervised']:.2f}",
                f"{dispatch_overhead * 100:+.1f}%",
            ),
            (
                "checkpoint journal",
                f"{timings['pipeline_plain']:.2f}",
                f"{timings['pipeline_journaled']:.2f}",
                f"{journal_overhead * 100:+.1f}%",
            ),
        ],
    )
