"""Figure 9: a biologically significant alignment rescued by gapped
filtering.

The paper's browser shot shows a single-exon gene whose dm6-dp4 alignment
is found by Darwin-WGA but missed by LASTZ: the region contains seed hits
flanked by indels, so ungapped extension dies while banded Smith-Waterman
crosses the gaps.  The harness looks for TBLASTX-confirmed exons covered
by Darwin-WGA chains but absent from LASTZ chains and reports the
base-level statistics of the rescued region (length, identity, gap
structure) like the paper's Figure 9b.
"""

import pytest

from repro.annotate import find_orthologous_exons, uncovered_exons

from .conftest import print_table


def rescued_exons(run):
    target = run.pair.target.genome
    confirmed = [
        hit.exon
        for hit in find_orthologous_exons(
            target, run.pair.target.exons, run.pair.query.genome
        )
    ]
    missed_by_lastz = {
        (e.start, e.end)
        for e in uncovered_exons(run.lastz_chains, confirmed, len(target))
    }
    covered_by_darwin = {
        (e.start, e.end) for e in confirmed
    } - {
        (e.start, e.end)
        for e in uncovered_exons(run.darwin_chains, confirmed, len(target))
    }
    return confirmed, sorted(missed_by_lastz & covered_by_darwin)


def region_stats(run, start, end):
    """Darwin-WGA block stats over the rescued target interval."""
    for chain in run.darwin_chains:
        for block in chain.blocks:
            if block.target_start < end and start < block.target_end:
                overlap_start = max(start, block.target_start)
                overlap_end = min(end, block.target_end)
                return (
                    block.target_end - block.target_start,
                    block.identity(),
                    len(block.cigar.gap_runs()),
                    overlap_end - overlap_start,
                )
    return None


def _extra_runs():
    """Additional distant pairs, scanned until a rescue event appears.

    A 30 kb mosaic genome holds only ~14 exons, so whether a specific
    draw contains a LASTZ-missed-but-TBLASTX-confirmed exon is a coin
    flip; the paper finds its Figure 9 example in a 137 Mbp genome.
    Scanning a handful of seeds plays the role of that extra scale.
    """
    from .conftest import _run_pair

    for seed in range(60, 72):
        yield _run_pair(f"extra-{seed}", 1.32, seed)


@pytest.mark.benchmark(group="fig9")
def test_fig9_rescued_alignment(benchmark, pair_runs):
    def evaluate():
        found = []

        def scan(run):
            confirmed, rescued = rescued_exons(run)
            for start, end in rescued:
                stats = region_stats(run, start, end)
                if stats is not None:
                    found.append((run.name, start, end, stats))

        for run in pair_runs[::-1]:  # most distant pairs first
            scan(run)
        if not found:
            for run in _extra_runs():
                scan(run)
                if found:
                    break
        return found

    found = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = [
        (
            name,
            f"[{start}, {end})",
            stats[0],
            f"{stats[1]:.1%}",
            stats[2],
            stats[3],
        )
        for name, start, end, stats in found
    ]
    print_table(
        "Figure 9: exons aligned by Darwin-WGA but missed by LASTZ",
        [
            "pair",
            "exon (target)",
            "block len",
            "identity",
            "gap runs",
            "exon bp aligned",
        ],
        rows,
    )

    # The paper's phenomenon must exist: at least one confirmed exon is
    # covered by Darwin-WGA chains and missed by LASTZ chains, and the
    # rescuing alignment contains gaps (which is why ungapped filtering
    # dropped it).
    assert found, "no rescued exon found - gapped filtering shows no gain"
    assert any(stats[2] >= 1 for _, _, _, stats in found)
