"""Ablation: seed transition tolerance (paper Figure 5 / section III-B).

Allowing one transition substitution in the 12of19 seed multiplies the
lookup workload by ``m + 1`` (13x) but recovers seed hits in diverged
regions where transitions are the dominant substitution class.  The sweep
reports raw hits, D-SOFT candidates, and final anchors with transitions
on and off.
"""


import pytest

from repro.core import DarwinWGAConfig, gapped_filter
from repro.seed import SeedIndex, SpacedSeed, dsoft_seed

from .conftest import print_table


def seed_stats(run, transitions):
    config = DarwinWGAConfig(seed=SpacedSeed(transitions=transitions))
    target = run.pair.target.genome
    query = run.pair.query.genome
    index = SeedIndex.build(target, config.seed)
    seeding = dsoft_seed(index, query, config.dsoft)
    filtered = gapped_filter(
        target,
        query,
        seeding.target_positions,
        seeding.query_positions,
        config.scoring,
        config.filtering,
    )
    return seeding.raw_hit_count, seeding.candidate_count, len(
        filtered.anchors
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_seed_transitions(benchmark, distant_run):
    def evaluate():
        return {
            mode: seed_stats(distant_run, transitions=mode)
            for mode in (False, True)
        }

    stats = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = [
        (
            "1 transition" if mode else "exact only",
            raw,
            candidates,
            anchors,
        )
        for mode, (raw, candidates, anchors) in stats.items()
    ]
    print_table(
        "Ablation: seed transition tolerance (distant pair)",
        ["seed mode", "raw hits", "candidates", "anchors"],
        rows,
    )

    exact_raw, _, exact_anchors = stats[False]
    trans_raw, _, trans_anchors = stats[True]
    # Paper shapes: transitions cost roughly (m+1)x more raw lookups and
    # never lose anchors.
    assert trans_raw > 2 * exact_raw
    assert trans_anchors >= exact_anchors


@pytest.mark.benchmark(group="ablation")
def test_ablation_spaced_vs_contiguous(benchmark, rng_seed=314):
    """Spaced seeds beat contiguous seeds of equal weight — the reason
    both LASTZ and Darwin-WGA use 12of19 rather than a 12-mer."""
    import numpy as np

    from repro.seed import SpacedSeed, monte_carlo_sensitivity

    def evaluate():
        rng = np.random.default_rng(rng_seed)
        patterns = {
            "contiguous 12-mer": "1" * 12,
            "12of19 (default)": SpacedSeed().pattern,
        }
        rows = []
        for label, pattern in patterns.items():
            seed = SpacedSeed(pattern=pattern, transitions=False)
            sensitivity = monte_carlo_sensitivity(
                seed, 64, 0.35, rng, trials=600
            )
            rows.append((label, sensitivity))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Ablation: spaced vs contiguous seed "
        "(64 bp region, 0.35 subs/site)",
        ["pattern", "P(>=1 hit)"],
        [(label, f"{p:.3f}") for label, p in rows],
    )
    by_label = dict(rows)
    assert (
        by_label["12of19 (default)"]
        >= by_label["contiguous 12-mer"]
    )
