"""Microbenchmarks of the computational kernels (pytest-benchmark).

These measure the Python implementation's own throughput — the analogue
of the paper's Parasail software baseline measurements — and anchor the
cells/second constants used to sanity-check the cost model.

``test_kernel_oracle_speedups`` additionally times every vectorised
kernel against its frozen row-at-a-time oracle in
:mod:`repro.align._reference` on identical inputs, and records the
old-vs-new cells/s (plus the speedup ratio) in the ``kernels`` section
of ``BENCH_PIPELINE.json`` so the perf trajectory across PRs keeps both
curves.
"""

import json
import time

import numpy as np
import pytest

from repro.align import (
    align_global,
    align_local,
    bsw_batch,
    ungapped_extend_batch,
    xdrop_extend,
)
from repro.align import _reference as ref
from repro.align.matrices import lastz_default
from repro.genome import Sequence
from repro.seed import DsoftParams, SeedIndex, SpacedSeed, dsoft_seed

from .conftest import BENCH_PIPELINE_PATH, print_table


@pytest.fixture(scope="module")
def scoring():
    return lastz_default()


@pytest.fixture(scope="module")
def genome_pair():
    rng = np.random.default_rng(5)
    target = Sequence(rng.integers(0, 4, 50000).astype(np.uint8), "t")
    q_codes = rng.integers(0, 4, 50000).astype(np.uint8)
    q_codes[10000:30000] = target.codes[15000:35000]
    return target, Sequence(q_codes, "q")


@pytest.mark.benchmark(group="kernels")
def test_bsw_batch_tile_throughput(benchmark, scoring):
    rng = np.random.default_rng(6)
    k = 64
    targets = rng.integers(0, 4, (k, 320)).astype(np.uint8)
    queries = rng.integers(0, 4, (k, 320)).astype(np.uint8)

    def run():
        return bsw_batch(targets, queries, scoring, band=32)

    scores, _, _ = benchmark(run)
    assert scores.shape == (k,)


@pytest.mark.benchmark(group="kernels")
def test_xdrop_tile_throughput(benchmark, scoring):
    rng = np.random.default_rng(7)
    core = rng.integers(0, 4, 1920).astype(np.uint8)
    target = Sequence(core, "t")
    mutated = core.copy()
    sites = rng.random(1920) < 0.2
    mutated[sites] = (mutated[sites] + 1) % 4
    query = Sequence(mutated, "q")

    result = benchmark(lambda: xdrop_extend(target, query, scoring, 9430))
    assert result.score > 0


@pytest.mark.benchmark(group="kernels")
def test_ungapped_batch_throughput(benchmark, scoring, genome_pair):
    target, query = genome_pair
    rng = np.random.default_rng(8)
    k = 4096
    t_pos = rng.integers(0, len(target), k)
    q_pos = rng.integers(0, len(query), k)

    def run():
        return ungapped_extend_batch(
            target, query, t_pos, q_pos, scoring, xdrop=910, max_length=256
        )

    scores, _, _ = benchmark(run)
    assert scores.shape == (k,)


def _best_seconds(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_kernel_rates(entries, path=BENCH_PIPELINE_PATH):
    """Fold the kernel comparison into the aggregate perf artifact."""
    try:
        artifact = json.loads(path.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    artifact["kernels"] = entries
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True))


@pytest.mark.benchmark(group="kernels")
def test_kernel_oracle_speedups(benchmark, scoring):
    """Old-vs-new cells/s for every kernel with a frozen oracle."""
    rng = np.random.default_rng(11)

    # X-drop: one full extension tile at ~20% divergence.
    core = rng.integers(0, 4, 1920).astype(np.uint8)
    mutated = core.copy()
    sites = rng.random(1920) < 0.2
    mutated[sites] = (mutated[sites] + 1) % 4
    xd_target = Sequence(core, "t")
    xd_query = Sequence(mutated, "q")
    xd_cells = xdrop_extend(xd_target, xd_query, scoring, 9430).cells

    # Banded SW: a stack of filter-sized tiles.
    k, m, n, band = 64, 320, 320, 32
    bsw_targets = rng.integers(0, 4, (k, m)).astype(np.uint8)
    bsw_queries = rng.integers(0, 4, (k, n)).astype(np.uint8)
    bsw_cells = k * sum(
        min(m, i + band) - max(1, i - band) + 1 for i in range(1, n + 1)
    )

    # Full-matrix local/global alignment on mid-sized sequences.
    sw_target = Sequence(rng.integers(0, 4, 400).astype(np.uint8), "t")
    sw_query = Sequence(rng.integers(0, 4, 400).astype(np.uint8), "q")
    sw_cells = len(sw_target) * len(sw_query)

    workloads = {
        "xdrop": (
            xd_cells,
            lambda: xdrop_extend(xd_target, xd_query, scoring, 9430),
            lambda: ref.xdrop_extend_reference(
                xd_target, xd_query, scoring, 9430
            ),
        ),
        "bsw_batch": (
            bsw_cells,
            lambda: bsw_batch(bsw_targets, bsw_queries, scoring, band),
            lambda: ref.bsw_batch_reference(
                bsw_targets, bsw_queries, scoring, band
            ),
        ),
        "smith_waterman": (
            sw_cells,
            lambda: align_local(sw_target, sw_query, scoring),
            lambda: ref.align_local_reference(sw_target, sw_query, scoring),
        ),
        "needleman_wunsch": (
            sw_cells,
            lambda: align_global(sw_target, sw_query, scoring),
            lambda: ref.align_global_reference(
                sw_target, sw_query, scoring
            ),
        ),
    }

    def evaluate():
        entries = {}
        for name, (cells, new_fn, ref_fn) in workloads.items():
            new_rate = cells / _best_seconds(new_fn)
            ref_rate = cells / _best_seconds(ref_fn)
            entries[name] = {
                "cells": cells,
                "new_cells_per_sec": new_rate,
                "reference_cells_per_sec": ref_rate,
                "speedup": new_rate / ref_rate,
            }
        return entries

    entries = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    _merge_kernel_rates(entries)
    print_table(
        "Kernel throughput vs frozen oracle",
        ("kernel", "cells", "oracle cells/s", "new cells/s", "speedup"),
        [
            (
                name,
                entry["cells"],
                f"{entry['reference_cells_per_sec'] / 1e6:.1f}M",
                f"{entry['new_cells_per_sec'] / 1e6:.1f}M",
                f"{entry['speedup']:.2f}x",
            )
            for name, entry in entries.items()
        ],
    )
    for name, entry in entries.items():
        assert entry["new_cells_per_sec"] > 0, name
        assert entry["reference_cells_per_sec"] > 0, name


@pytest.mark.benchmark(group="kernels")
def test_seed_index_build(benchmark, genome_pair):
    target, _ = genome_pair
    seed = SpacedSeed()
    index = benchmark(lambda: SeedIndex.build(target, seed))
    assert index.size > 0


@pytest.mark.benchmark(group="kernels")
def test_dsoft_seeding_throughput(benchmark, genome_pair):
    target, query = genome_pair
    seed = SpacedSeed()
    index = SeedIndex.build(target, seed)

    result = benchmark(
        lambda: dsoft_seed(index, query, DsoftParams())
    )
    assert result.raw_hit_count > 0
