"""Microbenchmarks of the computational kernels (pytest-benchmark).

These measure the Python implementation's own throughput — the analogue
of the paper's Parasail software baseline measurements — and anchor the
cells/second constants used to sanity-check the cost model.
"""

import numpy as np
import pytest

from repro.align import bsw_batch, ungapped_extend_batch, xdrop_extend
from repro.align.matrices import lastz_default
from repro.genome import Sequence
from repro.seed import DsoftParams, SeedIndex, SpacedSeed, dsoft_seed


@pytest.fixture(scope="module")
def scoring():
    return lastz_default()


@pytest.fixture(scope="module")
def genome_pair():
    rng = np.random.default_rng(5)
    target = Sequence(rng.integers(0, 4, 50000).astype(np.uint8), "t")
    q_codes = rng.integers(0, 4, 50000).astype(np.uint8)
    q_codes[10000:30000] = target.codes[15000:35000]
    return target, Sequence(q_codes, "q")


@pytest.mark.benchmark(group="kernels")
def test_bsw_batch_tile_throughput(benchmark, scoring):
    rng = np.random.default_rng(6)
    k = 64
    targets = rng.integers(0, 4, (k, 320)).astype(np.uint8)
    queries = rng.integers(0, 4, (k, 320)).astype(np.uint8)

    def run():
        return bsw_batch(targets, queries, scoring, band=32)

    scores, _, _ = benchmark(run)
    assert scores.shape == (k,)


@pytest.mark.benchmark(group="kernels")
def test_xdrop_tile_throughput(benchmark, scoring):
    rng = np.random.default_rng(7)
    core = rng.integers(0, 4, 1920).astype(np.uint8)
    target = Sequence(core, "t")
    mutated = core.copy()
    sites = rng.random(1920) < 0.2
    mutated[sites] = (mutated[sites] + 1) % 4
    query = Sequence(mutated, "q")

    result = benchmark(lambda: xdrop_extend(target, query, scoring, 9430))
    assert result.score > 0


@pytest.mark.benchmark(group="kernels")
def test_ungapped_batch_throughput(benchmark, scoring, genome_pair):
    target, query = genome_pair
    rng = np.random.default_rng(8)
    k = 4096
    t_pos = rng.integers(0, len(target), k)
    q_pos = rng.integers(0, len(query), k)

    def run():
        return ungapped_extend_batch(
            target, query, t_pos, q_pos, scoring, xdrop=910, max_length=256
        )

    scores, _, _ = benchmark(run)
    assert scores.shape == (k,)


@pytest.mark.benchmark(group="kernels")
def test_seed_index_build(benchmark, genome_pair):
    target, _ = genome_pair
    seed = SpacedSeed()
    index = benchmark(lambda: SeedIndex.build(target, seed))
    assert index.size > 0


@pytest.mark.benchmark(group="kernels")
def test_dsoft_seeding_throughput(benchmark, genome_pair):
    target, query = genome_pair
    seed = SpacedSeed()
    index = SeedIndex.build(target, seed)

    result = benchmark(
        lambda: dsoft_seed(index, query, DsoftParams())
    )
    assert result.raw_hit_count > 0
