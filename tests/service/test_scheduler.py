"""Weighted-fair scheduling: determinism, fairness, bounded admission."""

import pytest

from repro.service import Job, WeightedFairScheduler


def make_job(seq, priority="default"):
    return Job(
        id=f"job-{seq:06d}",
        kind="align",
        spec={"target": "t.fa", "query": "q.fa"},
        priority=priority,
        seq=seq,
    )


def drain_order(scheduler):
    order = []
    while len(scheduler):
        order.append(scheduler.take(timeout=0).priority)
    return order


class TestOrdering:
    def test_fifo_within_one_class(self):
        scheduler = WeightedFairScheduler(max_queued=8)
        jobs = [make_job(i) for i in range(5)]
        for job in jobs:
            assert scheduler.offer(job)
        taken = [scheduler.take(timeout=0).seq for _ in range(5)]
        assert taken == [0, 1, 2, 3, 4]

    def test_interactive_outweighs_batch(self):
        scheduler = WeightedFairScheduler(max_queued=32)
        for i in range(16):
            scheduler.offer(
                make_job(i, "interactive" if i % 2 else "batch")
            )
        order = drain_order(scheduler)
        # All eight interactive jobs drain before the batch backlog
        # finishes: an interactive job costs 1/8 virtual time, a batch
        # job costs 1.
        assert order.index("batch") == 0 or order[0] == "interactive"
        last_interactive = max(
            i for i, p in enumerate(order) if p == "interactive"
        )
        first_batch_tail = [p for p in order[last_interactive + 1:]]
        assert first_batch_tail.count("batch") >= 6

    def test_no_class_starves(self):
        scheduler = WeightedFairScheduler(max_queued=64)
        for i in range(24):
            scheduler.offer(
                make_job(i, "interactive" if i % 3 else "batch")
            )
        order = drain_order(scheduler)
        assert order.count("batch") == 8
        assert order.count("interactive") == 16

    def test_order_is_deterministic(self):
        def run():
            scheduler = WeightedFairScheduler(max_queued=64)
            for i in range(20):
                priority = ("interactive", "default", "batch")[i % 3]
                scheduler.offer(make_job(i, priority))
            taken = []
            while len(scheduler):
                taken.append(scheduler.take(timeout=0).seq)
            return taken

        assert run() == run()


class TestAdmission:
    def test_bounded_admission_sheds(self):
        scheduler = WeightedFairScheduler(max_queued=2)
        assert scheduler.offer(make_job(0))
        assert scheduler.offer(make_job(1))
        assert not scheduler.offer(make_job(2))
        assert scheduler.shed == 1
        assert scheduler.depth() == 2

    def test_rejects_nonsense_capacity(self):
        with pytest.raises(ValueError):
            WeightedFairScheduler(max_queued=0)

    def test_take_timeout_returns_none(self):
        scheduler = WeightedFairScheduler(max_queued=2)
        assert scheduler.take(timeout=0.01) is None

    def test_cancelled_jobs_are_skipped(self):
        scheduler = WeightedFairScheduler(max_queued=4)
        first, second = make_job(0), make_job(1)
        scheduler.offer(first)
        scheduler.offer(second)
        first.state = "cancelled"
        assert scheduler.take(timeout=0) is second

    def test_drain_empties_in_tag_order(self):
        scheduler = WeightedFairScheduler(max_queued=8)
        jobs = [make_job(i) for i in range(3)]
        for job in jobs:
            scheduler.offer(job)
        assert [job.seq for job in scheduler.drain()] == [0, 1, 2]
        assert scheduler.depth() == 0
