"""Crash-safety of the job journal: torn tails, replay, idempotence."""

import json

import pytest

from repro.service import JobJournal, JournalError, replay_jobs

EVENTS = [
    {"event": "submitted", "id": "job-000000", "seq": 0, "kind": "align",
     "priority": "default", "deadline": None,
     "spec": {"target": "t.fa", "query": "q.fa"}},
    {"event": "started", "id": "job-000000"},
    {"event": "done", "id": "job-000000", "summary": {"alignments": 3}},
    {"event": "submitted", "id": "job-000001", "seq": 1, "kind": "align",
     "priority": "batch", "deadline": None,
     "spec": {"target": "t.fa", "query": "q.fa"}},
    {"event": "started", "id": "job-000001"},
]


def write_journal(path, events):
    journal = JobJournal.create(path)
    for event in events:
        journal.append(event)
    return journal


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, EVENTS)
        loaded = JobJournal.load(path)
        assert loaded.events == EVENTS
        assert loaded.skipped_records == 0

    def test_attach_creates_then_loads(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        assert not path.exists()
        journal = JobJournal.attach(path)
        assert path.exists()
        journal.append(EVENTS[0])
        again = JobJournal.attach(path)
        assert again.events == [EVENTS[0]]

    def test_len_counts_events(self, tmp_path):
        journal = write_journal(tmp_path / "j.jsonl", EVENTS)
        assert len(journal) == len(EVENTS)


class TestTornTail:
    def test_truncated_mid_record_skips_only_the_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, EVENTS)
        raw = path.read_bytes()
        # Cut the file mid-way through the final record, as kill -9
        # during the final write would.
        path.write_bytes(raw[: len(raw) - 17])
        loaded = JobJournal.load(path)
        assert loaded.events == EVENTS[:-1]
        assert loaded.skipped_records == 1

    @pytest.mark.parametrize("cut", [1, 2, 3, 4, 5])
    def test_every_truncation_point_keeps_the_prefix(self, tmp_path, cut):
        path = tmp_path / "journal.jsonl"
        write_journal(path, EVENTS)
        lines = path.read_bytes().splitlines(keepends=True)
        # Truncate exactly at a record boundary: a clean prefix, no
        # torn line at all.
        path.write_bytes(b"".join(lines[:cut]))
        loaded = JobJournal.load(path)
        assert loaded.events == EVENTS[: cut - 1]
        assert loaded.skipped_records == 0

    def test_corrupted_payload_is_skipped_not_trusted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, EVENTS)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        # Flip one character of the base64 payload; the checksum no
        # longer matches, so the record must be dropped.
        payload = record["payload"]
        record["payload"] = payload[:-2] + ("A" if payload[-2] != "A" else "B") + payload[-1]
        lines[2] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        loaded = JobJournal.load(path)
        assert loaded.skipped_records == 1
        assert EVENTS[1] not in loaded.events
        assert loaded.events[0] == EVENTS[0]

    def test_appends_continue_after_torn_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, EVENTS[:2])
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])
        journal = JobJournal.load(path)
        assert journal.events == EVENTS[:1]
        journal.append(EVENTS[2])
        reloaded = JobJournal.load(path)
        # Loading chopped the torn bytes, so the append started a fresh
        # line instead of merging into the partial record.
        assert reloaded.events == [EVENTS[0], EVENTS[2]]
        assert reloaded.skipped_records == 0


class TestHeaderValidation:
    def test_empty_file_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            JobJournal.load(path)

    def test_garbage_header_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JournalError, match="header"):
            JobJournal.load(path)

    def test_wrong_version_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(JournalError, match="version"):
            JobJournal.load(path)


class TestReplay:
    def test_done_jobs_keep_results_inflight_requeue(self, tmp_path):
        jobs = replay_jobs(EVENTS)
        assert jobs["job-000000"].state == "done"
        assert jobs["job-000000"].summary == {"alignments": 3}
        # started but never done: the crash interrupted it.
        assert jobs["job-000001"].state == "queued"

    def test_terminal_events_apply(self):
        events = list(EVENTS[:1]) + [
            {"event": "failed", "id": "job-000000", "error": "boom"}
        ]
        jobs = replay_jobs(events)
        assert jobs["job-000000"].state == "failed"
        assert jobs["job-000000"].error == "boom"
        events[-1] = {"event": "expired", "id": "job-000000"}
        assert replay_jobs(events)["job-000000"].state == "expired"
        events[-1] = {"event": "cancelled", "id": "job-000000"}
        assert replay_jobs(events)["job-000000"].state == "cancelled"

    def test_orphan_events_are_ignored(self):
        # A torn tail can eat a `submitted` but keep later events for
        # the same id (they were separate appends): replay must not
        # invent half-known jobs.
        jobs = replay_jobs([{"event": "started", "id": "ghost"}])
        assert jobs == {}
