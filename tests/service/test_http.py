"""The hand-rolled HTTP front-end: routing, parsing, error surfaces."""

import http.client
import json

import pytest

from repro.service.client import ServeClient, ServeError
from repro.service.http import HttpJsonServer


@pytest.fixture
def server():
    seen = {}

    def echo(match, body):
        seen["body"] = body
        return 200, {"echo": body}

    def shed(match, body):
        return 429, {"error": "full"}, {"Retry-After": "7"}

    def boom(match, body):
        raise RuntimeError("handler bug")

    routes = [
        ("POST", r"/echo", echo),
        ("GET", r"/items/([a-z0-9-]+)", lambda m, b: (200, {"id": m.group(1)})),
        ("POST", r"/shed", shed),
        ("GET", r"/boom", boom),
    ]
    server = HttpJsonServer(routes)
    server.seen = seen
    port = server.start("127.0.0.1", 0)
    client = ServeClient(port=port, timeout=5.0)
    yield server, client
    server.stop()


class TestRouting:
    def test_round_trip_json(self, server):
        _server, client = server
        status, payload, _headers = client.request(
            "POST", "/echo", {"x": 1}
        )
        assert (status, payload) == (200, {"echo": {"x": 1}})

    def test_path_captures(self, server):
        _server, client = server
        status, payload, _ = client.request("GET", "/items/abc-123")
        assert (status, payload) == (200, {"id": "abc-123"})

    def test_query_string_is_ignored_for_routing(self, server):
        _server, client = server
        status, payload, _ = client.request("GET", "/items/abc?verbose=1")
        assert (status, payload) == (200, {"id": "abc"})

    def test_unknown_path_is_404(self, server):
        _server, client = server
        status, payload, _ = client.request("GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        _server, client = server
        status, _payload, _ = client.request("GET", "/echo")
        assert status == 405


class TestErrorSurfaces:
    def test_retry_after_header_reaches_the_client(self, server):
        _server, client = server
        status, _payload, headers = client.request("POST", "/shed", {})
        assert status == 429
        assert headers.get("Retry-After") == "7"

    def test_typed_error_carries_the_backoff_headers(self, server):
        _server, client = server
        with pytest.raises(ServeError) as excinfo:
            client._checked("POST", "/shed", {})
        assert excinfo.value.status == 429
        assert excinfo.value.headers.get("Retry-After") == "7"

    def test_handler_exception_is_500_not_a_crash(self, server):
        _server, client = server
        status, payload, _ = client.request("GET", "/boom")
        assert status == 500
        assert "error" in payload
        # The server survived the bad handler.
        status, _, _ = client.request("GET", "/items/ok")
        assert status == 200

    def test_malformed_json_body_is_400(self, server):
        srv, _client = server
        connection = http.client.HTTPConnection("127.0.0.1", srv.port)
        try:
            connection.request(
                "POST",
                "/echo",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_oversized_body_is_413(self, server):
        srv, _client = server
        connection = http.client.HTTPConnection("127.0.0.1", srv.port)
        try:
            connection.putrequest("POST", "/echo")
            connection.putheader("Content-Length", str(10 << 20))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()

    def test_client_raises_typed_error_on_4xx(self, server):
        _server, client = server
        with pytest.raises(ServeError) as excinfo:
            client._checked("GET", "/nope")
        assert excinfo.value.status == 404


class TestErrorResponsesAreJson:
    def test_404_body_parses(self, server):
        srv, _client = server
        connection = http.client.HTTPConnection("127.0.0.1", srv.port)
        try:
            connection.request("GET", "/definitely/not/there")
            response = connection.getresponse()
            body = json.loads(response.read())
            assert "error" in body
        finally:
            connection.close()
