"""The daemon end to end: lifecycle, durability, degradation."""

import random
import time

import pytest

from repro.core import align_assemblies
from repro.genome import read_fasta
from repro.io import write_assembly_maf
from repro.service import Job, JobJournal, ServeClient, ServeConfig, ServeDaemon
from repro.service.client import ServeError


def _mutate(seq, step=89):
    out = list(seq)
    for i in range(0, len(out), step):
        out[i] = "ACGT"[("ACGT".index(out[i]) + 1) % 4]
    return "".join(out)


@pytest.fixture(scope="module")
def genomes(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("genomes")
    rng = random.Random(41)
    chr1 = "".join(rng.choice("ACGT") for _ in range(1500))
    chr2 = "".join(rng.choice("ACGT") for _ in range(900))
    target = tmp / "target.fa"
    target.write_text(f">chr1\n{chr1}\n>chr2\n{chr2}\n")
    query = tmp / "query.fa"
    query.write_text(f">chrQ\n{_mutate(chr1[200:1300])}\n")
    return target, query


def make_daemon(tmp_path, **overrides):
    options = dict(
        state_dir=tmp_path / "state", port=0, workers=1, max_queued=4
    )
    options.update(overrides)
    return ServeDaemon(ServeConfig(**options))


class TestLifecycle:
    def test_submit_run_fetch(self, tmp_path, genomes):
        target, query = genomes
        daemon = make_daemon(tmp_path)
        port = daemon.start()
        client = ServeClient(port=port)
        ack = client.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )
        record = client.wait(ack["id"], timeout=120, poll=0.05)
        assert record["state"] == "done"
        assert record["summary"]["alignments"] >= 1
        assert record["summary"]["matched_bp"] > 0
        health = client.healthz()
        assert health["ok"] and health["state"] == "serving"
        status = client.status()
        assert status["jobs"] == {"done": 1}
        assert status["metrics"]["serve_jobs_submitted"] == 1
        daemon.stop()

    def test_served_output_matches_single_shot(self, tmp_path, genomes):
        target, query = genomes
        daemon = make_daemon(tmp_path)
        port = daemon.start()
        client = ServeClient(port=port)
        ack = client.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )
        record = client.wait(ack["id"], timeout=120, poll=0.05)
        daemon.stop()
        served = open(record["summary"]["output"]).read()
        targets, queries = read_fasta(target), read_fasta(query)
        result = align_assemblies(targets, queries)
        reference = tmp_path / "reference.maf"
        write_assembly_maf(result.alignments, targets, queries, reference)
        assert served == reference.read_text()

    def test_invalid_spec_is_400(self, tmp_path, genomes):
        daemon = make_daemon(tmp_path)
        port = daemon.start()
        client = ServeClient(port=port)
        with pytest.raises(ServeError) as excinfo:
            client.submit({"kind": "teleport"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({"kind": "align", "target": "t.fa"})
        assert excinfo.value.status == 400
        daemon.stop()

    def test_chain_job_runs(self, tmp_path, genomes):
        target, query = genomes
        targets, queries = read_fasta(target), read_fasta(query)
        result = align_assemblies(targets, queries)
        maf = tmp_path / "in.maf"
        write_assembly_maf(result.alignments, targets, queries, maf)
        daemon = make_daemon(tmp_path)
        port = daemon.start()
        client = ServeClient(port=port)
        ack = client.submit(
            {
                "kind": "chain",
                "maf": str(maf),
                "target": str(target),
                "query": str(query),
            }
        )
        record = client.wait(ack["id"], timeout=60, poll=0.05)
        daemon.stop()
        assert record["state"] == "done"
        assert record["summary"]["chains"] >= 1


class TestGracefulDegradation:
    def test_saturation_sheds_with_retry_after(self, tmp_path, genomes):
        target, query = genomes
        # No runner thread: jobs queue but never drain, so admission
        # fills deterministically.
        daemon = make_daemon(tmp_path, max_queued=2)
        spec = {"kind": "align", "target": str(target), "query": str(query)}
        assert daemon.submit(dict(spec))[0] == 202
        assert daemon.submit(dict(spec))[0] == 202
        status, payload, headers = daemon.submit(dict(spec))
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "retry" in payload["error"]
        assert daemon.scheduler.shed == 1
        # Shed submissions are never journaled: a 429'd client was
        # refused, not acked.
        journal = JobJournal.load(daemon.state_dir / "journal.jsonl")
        assert len(journal.events) == 2
        daemon.stop()

    def test_draining_daemon_answers_503(self, tmp_path, genomes):
        target, query = genomes
        daemon = make_daemon(tmp_path)
        daemon.request_stop()
        status, payload = daemon.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )[:2]
        assert status == 503
        daemon.stop()

    def test_deadline_expires_before_pickup(self, tmp_path, genomes):
        target, query = genomes
        daemon = make_daemon(tmp_path)
        status, payload = daemon.submit(
            {
                "kind": "align",
                "target": str(target),
                "query": str(query),
                "deadline": 0.01,
            }
        )[:2]
        assert status == 202
        time.sleep(0.05)
        daemon.start()
        client = ServeClient(port=daemon.port)
        record = client.wait(payload["id"], timeout=30, poll=0.05)
        assert record["state"] == "expired"
        assert client.status()["metrics"]["serve_jobs_expired"] == 1
        daemon.stop()

    def test_cancel_before_pickup(self, tmp_path, genomes):
        target, query = genomes
        daemon = make_daemon(tmp_path)
        _status, payload = daemon.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )[:2]
        assert daemon.cancel(payload["id"])[0] == 200
        assert daemon.cancel(payload["id"])[0] == 400  # already cancelled
        assert daemon.cancel("job-999999")[0] == 404
        daemon.start()
        client = ServeClient(port=daemon.port)
        record = client.wait(payload["id"], timeout=10, poll=0.05)
        assert record["state"] == "cancelled"
        daemon.stop()

    def test_failed_job_does_not_poison_the_daemon(self, tmp_path, genomes):
        target, query = genomes
        daemon = make_daemon(tmp_path)
        port = daemon.start()
        client = ServeClient(port=port)
        bad = client.submit(
            {"kind": "align", "target": "/does/not/exist.fa",
             "query": str(query)}
        )
        good = client.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )
        assert client.wait(bad["id"], timeout=30)["state"] == "failed"
        assert client.wait(good["id"], timeout=120)["state"] == "done"
        daemon.stop()


class TestCrashRecovery:
    def submit_two(self, daemon, target, query):
        spec = {"kind": "align", "target": str(target), "query": str(query)}
        first = daemon.submit(dict(spec))[1]["id"]
        second = daemon.submit(dict(spec, priority="batch"))[1]["id"]
        return first, second

    def test_restart_requeues_unfinished_jobs(self, tmp_path, genomes):
        target, query = genomes
        # First incarnation journals two submissions but is "killed"
        # before its runner ever starts (start() never called).
        first = make_daemon(tmp_path)
        ids = self.submit_two(first, target, query)
        # Second incarnation replays and completes them.
        second = make_daemon(tmp_path)
        assert set(second.jobs) == set(ids)
        assert all(job.state == "queued" for job in second.jobs.values())
        port = second.start()
        client = ServeClient(port=port)
        for job_id in ids:
            assert client.wait(job_id, timeout=120)["state"] == "done"
        second.stop()
        # Third incarnation: everything is done, nothing re-runs.
        third = make_daemon(tmp_path)
        assert all(job.state == "done" for job in third.jobs.values())
        assert third.scheduler.depth() == 0
        started = [
            event for event in third.journal.events
            if event["event"] == "started"
        ]
        assert len(started) == 2
        third.stop()

    def test_interrupted_job_resumes_from_checkpoint(
        self, tmp_path, genomes
    ):
        target, query = genomes
        # Run once to completion to learn the reference output.
        first = make_daemon(tmp_path)
        port = first.start()
        client = ServeClient(port=port)
        ack = client.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )
        record = client.wait(ack["id"], timeout=120)
        reference = open(record["summary"]["output"]).read()
        first.stop()

        # Forge the crash: rewrite the journal as if the daemon died
        # mid-run (submitted + started, no done).  The job's checkpoint
        # manifest survives with its completed units.
        state = tmp_path / "state"
        events = JobJournal.load(state / "journal.jsonl").events
        journal = JobJournal.create(state / "journal.jsonl")
        for event in events:
            if event["event"] != "done":
                journal.append(event)

        revived = make_daemon(tmp_path)
        job = revived.jobs[ack["id"]]
        assert job.state == "queued"
        port = revived.start()
        client = ServeClient(port=port)
        record = client.wait(ack["id"], timeout=120)
        assert record["state"] == "done"
        # Every chromosome-pair unit came back from the checkpoint —
        # nothing recomputed — and the bytes match exactly.
        assert revived.resilience.stats.resumed_units == 2
        assert open(record["summary"]["output"]).read() == reference
        revived.stop()

    def test_torn_journal_tail_is_survived(self, tmp_path, genomes):
        target, query = genomes
        first = make_daemon(tmp_path)
        self.submit_two(first, target, query)
        journal_path = tmp_path / "state" / "journal.jsonl"
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[:-11])  # tear the final record
        revived = make_daemon(tmp_path)
        # The torn submission was never acked (journal before HTTP
        # response), so only the intact job survives.
        assert len(revived.jobs) == 1
        assert revived.journal.skipped_records == 1
        revived.stop()


class TestSupervision:
    def test_parallel_daemon_output_matches_serial(
        self, tmp_path, genomes
    ):
        target, query = genomes
        daemon = make_daemon(tmp_path, workers=2)
        port = daemon.start()
        client = ServeClient(port=port)
        ack = client.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )
        record = client.wait(ack["id"], timeout=180, poll=0.05)
        daemon.stop()
        assert record["state"] == "done"
        served = open(record["summary"]["output"]).read()
        targets, queries = read_fasta(target), read_fasta(query)
        result = align_assemblies(targets, queries)
        reference = tmp_path / "reference.maf"
        write_assembly_maf(result.alignments, targets, queries, reference)
        assert served == reference.read_text()

    def test_hung_worker_is_detected_and_job_completes(
        self, tmp_path, genomes
    ):
        """The full ladder through the daemon: an injected hang (worker
        goes silent, never crashes) is caught by the heartbeat sentinel,
        the pool is terminated and rebuilt, and the job still finishes
        with a correct result."""
        target, query = genomes
        daemon = make_daemon(
            tmp_path,
            workers=2,
            heartbeat_interval=0.05,
            heartbeat_deadline=0.4,
            inject_faults="3:hang=1.0",
            max_retries=1,
        )
        port = daemon.start()
        client = ServeClient(port=port)
        ack = client.submit(
            {"kind": "align", "target": str(target), "query": str(query)}
        )
        record = client.wait(ack["id"], timeout=300, poll=0.1)
        status = client.status()
        daemon.stop()
        assert record["state"] == "done"
        assert record["summary"]["alignments"] >= 1
        assert status["recovery"]["hangs"] >= 1
        assert status["hang_detections"] >= 1
        assert status["recovery"]["pool_rebuilds"] >= 1


class TestJobValidation:
    def test_unknown_priority_rejected(self):
        with pytest.raises(Exception, match="priority"):
            Job.from_request(
                {"kind": "align", "target": "t", "query": "q",
                 "priority": "ludicrous"},
                "job-000000",
                0,
            )

    def test_negative_deadline_rejected(self):
        with pytest.raises(Exception, match="deadline"):
            Job.from_request(
                {"kind": "align", "target": "t", "query": "q",
                 "deadline": -3},
                "job-000000",
                0,
            )
