"""Naive O(n*m) dynamic-programming references used as test oracles.

These are deliberately slow, loop-based implementations written straight
from the recurrences (paper equations 1-3), independent of the vectorised
kernels in :mod:`repro.align`.
"""

NEG = -(10**12)


def _matrices(target, query, scoring, local):
    t, q = target.codes, query.codes
    m, n = len(t), len(q)
    o, e = scoring.gap_open, scoring.gap_extend
    v = [[0] * (m + 1) for _ in range(n + 1)]
    h = [[NEG] * (m + 1) for _ in range(n + 1)]
    u = [[NEG] * (m + 1) for _ in range(n + 1)]
    if not local:
        for j in range(1, m + 1):
            v[0][j] = -(o + (j - 1) * e)
        for i in range(1, n + 1):
            v[i][0] = -(o + (i - 1) * e)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            h[i][j] = max(v[i][j - 1] - o, h[i][j - 1] - e)
            u[i][j] = max(v[i - 1][j] - o, u[i - 1][j] - e)
            v[i][j] = max(
                h[i][j],
                u[i][j],
                v[i - 1][j - 1] + scoring.score(t[j - 1], q[i - 1]),
            )
            if local:
                v[i][j] = max(v[i][j], 0)
    return v


def local_score(target, query, scoring):
    """Best Smith-Waterman local score."""
    v = _matrices(target, query, scoring, local=True)
    return max(max(row) for row in v)


def global_score(target, query, scoring):
    """Needleman-Wunsch global score."""
    if len(target) == 0 or len(query) == 0:
        length = max(len(target), len(query))
        return -scoring.gap_cost(length)
    v = _matrices(target, query, scoring, local=False)
    return v[len(query)][len(target)]


def extension_score(target, query, scoring):
    """Best NW-boundary extension score over all cells (>= 0)."""
    if len(target) == 0 or len(query) == 0:
        return 0
    v = _matrices(target, query, scoring, local=False)
    return max(0, max(max(row) for row in v))


def banded_local_score(target, query, scoring, band):
    """Best local score restricted to |i - j| <= band."""
    t, q = target.codes, query.codes
    m, n = len(t), len(q)
    o, e = scoring.gap_open, scoring.gap_extend
    v = [[0] * (m + 1) for _ in range(n + 1)]
    h = [[NEG] * (m + 1) for _ in range(n + 1)]
    u = [[NEG] * (m + 1) for _ in range(n + 1)]
    best = 0
    for i in range(1, n + 1):
        for j in range(max(1, i - band), min(m, i + band) + 1):
            h[i][j] = max(v[i][j - 1] - o, h[i][j - 1] - e)
            u[i][j] = max(v[i - 1][j] - o, u[i - 1][j] - e)
            v[i][j] = max(
                0,
                h[i][j],
                u[i][j],
                v[i - 1][j - 1] + scoring.score(t[j - 1], q[i - 1]),
            )
            best = max(best, v[i][j])
    return best


def cigar_score(cigar, target, query, scoring, t_start=0, q_start=0):
    """Score an alignment path directly from its CIGAR."""
    ti, qi = t_start, q_start
    total = 0
    for op, length in cigar:
        if op in ("=", "X"):
            for _ in range(length):
                total += scoring.score(target.codes[ti], query.codes[qi])
                ti += 1
                qi += 1
        elif op == "D":
            total -= scoring.gap_cost(length)
            ti += length
        else:
            total -= scoring.gap_cost(length)
            qi += length
    return total
