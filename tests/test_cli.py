"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def genomes(tmp_path):
    code = main(
        [
            "generate",
            "--length",
            "6000",
            "--distance",
            "0.4",
            "--seed",
            "3",
            "--out-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    return tmp_path


class TestGenerate:
    def test_writes_fasta_and_bed(self, genomes):
        assert (genomes / "target.fa").exists()
        assert (genomes / "query.fa").exists()
        assert (genomes / "target_exons.bed").exists()

    def test_bed_has_exon_rows(self, genomes):
        rows = (genomes / "target_exons.bed").read_text().splitlines()
        assert len(rows) == 10
        fields = rows[0].split("\t")
        assert fields[0] == "target"
        assert int(fields[2]) > int(fields[1])


class TestAlign:
    def test_darwin_align_writes_maf(self, genomes, capsys):
        out = genomes / "out.maf"
        code = main(
            [
                "align",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "alignments" in captured.out

    def test_lastz_align(self, genomes, capsys):
        code = main(
            [
                "align",
                "--aligner",
                "lastz",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
            ]
        )
        assert code == 0
        assert "alignments" in capsys.readouterr().out

    def test_plus_only(self, genomes):
        code = main(
            [
                "align",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--plus-only",
            ]
        )
        assert code == 0


class TestChain:
    def test_chain_from_maf(self, genomes, capsys):
        maf = genomes / "out.maf"
        main(
            [
                "align",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--out",
                str(maf),
            ]
        )
        chain_out = genomes / "out.chain"
        code = main(
            [
                "chain",
                str(maf),
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--out",
                str(chain_out),
            ]
        )
        assert code == 0
        assert chain_out.exists()
        text = chain_out.read_text()
        assert text.startswith("chain ")


class TestTrace:
    def test_align_trace_out_and_render(self, genomes, capsys):
        import json

        trace_path = genomes / "run.json"
        code = main(
            [
                "align",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        report = json.loads(trace_path.read_text())
        assert report["spans"][0]["name"] == "align"
        # per-stage cell counts in the trace match the workload block
        root = report["spans"][0]
        assert (
            root["counters"]["filter_cells"]
            == report["workload"]["filter_cells"]
        )
        assert (
            root["counters"]["extension_cells"]
            == report["workload"]["extension_cells"]
        )
        capsys.readouterr()

        chrome_path = genomes / "chrome.json"
        code = main(
            ["trace", str(trace_path), "--chrome", str(chrome_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert "align" in out
        chrome = json.loads(chrome_path.read_text())
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_chain_trace_out(self, genomes, capsys):
        import json

        maf = genomes / "trace.maf"
        main(
            [
                "align",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--out",
                str(maf),
            ]
        )
        trace_path = genomes / "chain_run.json"
        code = main(
            [
                "chain",
                str(maf),
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        report = json.loads(trace_path.read_text())
        assert report["spans"][0]["name"] == "chain"
        assert report["meta"]["command"] == "chain"


class TestModel:
    def test_model_defaults(self, capsys):
        code = main(["model"])
        assert code == 0
        out = capsys.readouterr().out
        assert "performance/$" in out
        assert "performance/W" in out

    def test_model_asic_table(self, capsys):
        code = main(["model", "--asic-table"])
        assert code == 0
        assert "BSW Logic" in capsys.readouterr().out


class TestMask:
    def test_mask_writes_fasta(self, genomes, capsys):
        out = genomes / "masked.fa"
        code = main(
            [
                "mask",
                str(genomes / "target.fa"),
                "--out",
                str(out),
                "--method",
                "frequency",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "masked" in capsys.readouterr().out


class TestNet:
    def test_net_from_maf(self, genomes, capsys):
        maf = genomes / "net.maf"
        main(
            [
                "align",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--out",
                str(maf),
            ]
        )
        code = main(
            [
                "net",
                str(maf),
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-level entries" in out


class TestTblastx:
    def test_translated_search(self, genomes, capsys):
        code = main(
            [
                "tblastx",
                str(genomes / "target.fa"),
                str(genomes / "query.fa"),
                "--threshold",
                "50",
                "--max-hits",
                "5",
            ]
        )
        assert code == 0
        assert "translated hits" in capsys.readouterr().out


@pytest.fixture
def assemblies(tmp_path):
    code = main(
        [
            "generate",
            "--length",
            "3000",
            "--chromosomes",
            "2",
            "--distance",
            "0.4",
            "--seed",
            "3",
            "--out-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    return tmp_path


class TestRobustness:
    def test_generate_chromosomes_writes_multi_fasta(self, assemblies):
        target = (assemblies / "target.fa").read_text()
        names = [
            line[1:].split()[0]
            for line in target.splitlines()
            if line.startswith(">")
        ]
        assert names == ["target_chr1", "target_chr2"]
        bed_names = {
            row.split("\t")[0]
            for row in (assemblies / "target_exons.bed")
            .read_text()
            .splitlines()
        }
        assert bed_names <= {"target_chr1", "target_chr2"}

    def test_fault_injection_matches_serial(self, assemblies, capsys):
        serial = assemblies / "serial.maf"
        chaos = assemblies / "chaos.maf"
        args = [
            "align",
            str(assemblies / "target.fa"),
            str(assemblies / "query.fa"),
        ]
        assert main(args + ["--out", str(serial)]) == 0
        code = main(
            args
            + [
                "--out",
                str(chaos),
                "--workers",
                "2",
                "--inject-faults",
                "2:error=0.6",
            ]
        )
        assert code == 0
        assert chaos.read_bytes() == serial.read_bytes()
        assert "recovery" in capsys.readouterr().out

    def test_checkpoint_resume_roundtrip(self, assemblies, capsys):
        full = assemblies / "full.maf"
        resumed = assemblies / "resumed.maf"
        manifest = assemblies / "run.manifest"
        args = [
            "align",
            str(assemblies / "target.fa"),
            str(assemblies / "query.fa"),
        ]
        code = main(
            args + ["--out", str(full), "--checkpoint", str(manifest)]
        )
        assert code == 0
        lines = manifest.read_text().splitlines()
        assert len(lines) == 5  # header + 2x2 chromosome pairs
        # Drop the last two journaled units to simulate an interrupt.
        manifest.write_text("\n".join(lines[:3]) + "\n")
        code = main(
            args
            + [
                "--out",
                str(resumed),
                "--checkpoint",
                str(manifest),
                "--resume",
            ]
        )
        assert code == 0
        assert resumed.read_bytes() == full.read_bytes()
        assert "2 resumed" in capsys.readouterr().out

    def test_resume_requires_checkpoint(self, assemblies):
        with pytest.raises(SystemExit, match="checkpoint"):
            main(
                [
                    "align",
                    str(assemblies / "target.fa"),
                    str(assemblies / "query.fa"),
                    "--resume",
                ]
            )


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
