"""Chain gap-cost table tests."""

import numpy as np
import pytest

from repro.chain import GapCosts


@pytest.fixture
def loose():
    return GapCosts.loose()


@pytest.fixture
def medium():
    return GapCosts.medium()


class TestCurves:
    def test_zero_gap_is_free(self, loose):
        assert loose.cost(0, 0) == 0.0

    def test_table_knots_exact(self, loose):
        # Knots from the UCSC loose table.
        assert loose.cost(1, 0) == 325
        assert loose.cost(0, 1) == 325
        assert loose.cost(111, 0) == 600
        assert loose.cost(2111, 0) == 1100

    def test_both_gap_uses_combined_size(self, loose):
        assert loose.cost(1, 1) == 660  # bothGap at size 2
        assert loose.cost(55, 56) == pytest.approx(900)  # size 111

    def test_interpolation_between_knots(self, loose):
        low, high = loose.cost(111, 0), loose.cost(2111, 0)
        mid = loose.cost(1111, 0)
        assert low < mid < high

    def test_extrapolation_beyond_table(self, loose):
        last = loose.cost(252111, 0)
        beyond = loose.cost(352111, 0)
        slope = (56600 - 31600) / (252111 - 152111)
        assert beyond == pytest.approx(last + 100000 * slope)

    def test_monotone_nondecreasing(self, loose):
        sizes = np.array([1, 2, 5, 50, 500, 5000, 50000, 500000])
        costs = loose.cost(sizes, np.zeros_like(sizes))
        assert (np.diff(costs) >= 0).all()

    def test_vectorised(self, loose):
        costs = loose.cost(np.array([1, 0, 3]), np.array([0, 1, 4]))
        assert costs.shape == (3,)
        assert costs[2] == loose.cost(3, 4)


class TestPresets:
    def test_medium_is_steeper_for_large_gaps(self, loose, medium):
        assert medium.cost(50000, 0) > loose.cost(50000, 0)

    def test_both_gap_costs_more_than_single(self, loose):
        assert loose.cost(10, 10) > loose.cost(20, 0)
