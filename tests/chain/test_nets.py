"""Chain netting tests."""

import pytest

from repro.align import Alignment, Cigar
from repro.chain import build_chains, build_net


def chain_at(t_start, q_start, length, score):
    alignment = Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + length,
        query_start=q_start,
        query_end=q_start + length,
        score=score,
        cigar=Cigar.from_runs([("=", length)]),
    )
    (chain,) = build_chains([alignment])
    return chain


def gapped_chain(t_start, q_start, score):
    """Two blocks separated by a 400 bp target gap."""
    blocks = [
        Alignment(
            target_name="t",
            query_name="q",
            target_start=t_start,
            target_end=t_start + 200,
            query_start=q_start,
            query_end=q_start + 200,
            score=score / 2,
            cigar=Cigar.from_runs([("=", 200)]),
        ),
        Alignment(
            target_name="t",
            query_name="q",
            target_start=t_start + 600,
            target_end=t_start + 800,
            query_start=q_start + 600,
            query_end=q_start + 800,
            score=score / 2,
            cigar=Cigar.from_runs([("=", 200)]),
        ),
    ]
    (chain,) = build_chains(blocks)
    return chain


class TestBuildNet:
    def test_single_chain_net(self):
        chain = chain_at(100, 100, 500, 10_000)
        net = build_net([chain], target_length=1000)
        assert len(net.entries) == 1
        entry = net.entries[0]
        assert entry.level == 1
        assert (entry.target_start, entry.target_end) == (100, 600)
        assert net.fill_fraction() == pytest.approx(0.5)

    def test_best_chain_wins_overlap(self):
        strong = chain_at(0, 0, 500, 50_000)
        weak = chain_at(200, 5000, 500, 1_000)
        net = build_net([strong, weak], target_length=1000)
        top = net.entries
        assert top[0].chain is strong
        # weak claims only the free piece right of the strong chain
        weak_entries = [e for e in top if e.chain is weak]
        assert weak_entries
        assert weak_entries[0].target_start >= 500

    def test_gap_filled_by_child(self):
        parent = gapped_chain(0, 0, 100_000)
        filler = chain_at(300, 9000, 200, 500)
        net = build_net([parent, filler], target_length=2000)
        assert net.entries[0].chain is parent
        children = net.entries[0].children
        assert children
        assert children[0].chain is filler
        assert children[0].level == 2
        assert 200 <= children[0].target_start < 600

    def test_min_span_drops_slivers(self):
        big = chain_at(0, 0, 900, 50_000)
        sliver = chain_at(890, 5000, 20, 100)
        net = build_net([big, sliver], target_length=1000, min_span=25)
        assert all(e.chain is big for e in net.all_entries())

    def test_depth(self):
        parent = gapped_chain(0, 0, 100_000)
        filler = chain_at(300, 9000, 200, 500)
        net = build_net([parent, filler], target_length=2000)
        assert net.entries[0].depth() == 2

    def test_empty(self):
        net = build_net([], target_length=100)
        assert net.entries == []
        assert net.fill_fraction() == 0.0

    def test_all_entries_walks_hierarchy(self):
        parent = gapped_chain(0, 0, 100_000)
        filler = chain_at(300, 9000, 200, 500)
        net = build_net([parent, filler], target_length=2000)
        assert len(net.all_entries()) == 2
