"""Chain sensitivity-metric tests."""

import numpy as np
import pytest

from repro.align import Alignment, Cigar
from repro.chain import (
    block_length_histogram,
    build_chains,
    compare,
    fraction_below,
    mean_top_score,
    top_chain_scores,
    total_matches,
    ungapped_block_lengths,
)


def chain_with_cigar(cigar_text, t_start=0, score=1000):
    cigar = Cigar.parse(cigar_text)
    alignment = Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + cigar.target_span,
        query_start=t_start,
        query_end=t_start + cigar.query_span,
        score=score,
        cigar=cigar,
    )
    (chain,) = build_chains([alignment])
    return chain


class TestScores:
    def test_top_chain_scores(self):
        chains = [
            chain_with_cigar("10=", score=s) for s in (100, 900, 500)
        ]
        assert top_chain_scores(chains, 2) == [900, 500]

    def test_mean_top_score(self):
        chains = [chain_with_cigar("10=", score=s) for s in (100, 300)]
        assert mean_top_score(chains) == 200

    def test_mean_top_score_empty(self):
        assert mean_top_score([]) == 0.0

    def test_total_matches(self):
        chains = [chain_with_cigar("10=2X"), chain_with_cigar("5=")]
        assert total_matches(chains) == 15


class TestCompare:
    def test_comparison_ratios(self):
        baseline = [chain_with_cigar("10=", score=1000)]
        improved = [chain_with_cigar("30=", score=1100)]
        result = compare(baseline, improved)
        assert result.top_score_gain == pytest.approx(0.1)
        assert result.match_ratio == pytest.approx(3.0)

    def test_zero_baseline(self):
        improved = [chain_with_cigar("10=", score=100)]
        result = compare([], improved)
        assert result.match_ratio == float("inf")
        assert result.top_score_gain == 0.0


class TestBlockLengths:
    def test_ungapped_blocks_from_chains(self):
        chain = chain_with_cigar("30=1I10=1D20=")
        lengths = ungapped_block_lengths([chain])
        assert sorted(lengths.tolist()) == [10, 20, 30]

    def test_top_k_restriction(self):
        big = chain_with_cigar("100=", score=9000)
        small = chain_with_cigar("7=", t_start=500, score=10)
        lengths = ungapped_block_lengths([small, big], top_k=1)
        assert lengths.tolist() == [100]

    def test_fraction_below(self):
        lengths = np.array([10, 20, 40, 80])
        assert fraction_below(lengths, 30) == 0.5
        assert fraction_below(lengths, 5) == 0.0
        assert fraction_below(np.array([]), 30) == 0.0

    def test_histogram(self):
        lengths = np.array([1, 2, 4, 8, 16, 32, 64])
        counts, edges = block_length_histogram(lengths)
        assert counts.sum() <= lengths.size
        assert counts.sum() >= lengths.size - 1  # top edge inclusive detail
        assert (np.diff(edges) > 0).all()

    def test_histogram_custom_bins(self):
        lengths = np.array([5, 15, 25])
        counts, edges = block_length_histogram(
            lengths, bin_edges=[0, 10, 20, 30]
        )
        assert counts.tolist() == [1, 1, 1]
