"""Liftover tests."""

import pytest

from repro.align import Alignment, Cigar
from repro.chain import LiftOver, best_lift, build_chains


def make_chain(cigar_text, t_start=100, q_start=500):
    cigar = Cigar.parse(cigar_text)
    alignment = Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + cigar.target_span,
        query_start=q_start,
        query_end=q_start + cigar.query_span,
        score=1000,
        cigar=cigar,
    )
    (chain,) = build_chains([alignment])
    return chain


class TestMapPosition:
    def test_simple_offset(self):
        lift = LiftOver(make_chain("50="))
        assert lift.map_position(100) == 500
        assert lift.map_position(149) == 549

    def test_outside_chain_is_none(self):
        lift = LiftOver(make_chain("50="))
        assert lift.map_position(99) is None
        assert lift.map_position(150) is None

    def test_deletion_shifts_mapping(self):
        # 10 aligned, 5 deleted from query (target-only), 10 aligned
        lift = LiftOver(make_chain("10=5D10="))
        assert lift.map_position(105) == 505
        assert lift.map_position(112) is None  # inside the deletion
        assert lift.map_position(115) == 510

    def test_insertion_shifts_mapping(self):
        lift = LiftOver(make_chain("10=5I10="))
        assert lift.map_position(109) == 509
        assert lift.map_position(110) == 515

    def test_snap_to_nearest(self):
        lift = LiftOver(make_chain("10=5D10="))
        assert lift.map_position(112, snap=True) in (509, 510)

    def test_mismatches_map_like_matches(self):
        lift = LiftOver(make_chain("5=3X5="))
        assert lift.map_position(106) == 506


class TestMapInterval:
    def test_contained_interval(self):
        lift = LiftOver(make_chain("50="))
        assert lift.map_interval(110, 120) == (510, 520)

    def test_interval_spanning_gap(self):
        lift = LiftOver(make_chain("10=5D10="))
        assert lift.map_interval(105, 118) == (505, 513)

    def test_unmapped_interval(self):
        lift = LiftOver(make_chain("10="))
        assert lift.map_interval(500, 510) is None

    def test_min_fraction(self):
        lift = LiftOver(make_chain("10=90D10="))
        # only 10 of 100 bases align
        assert lift.map_interval(105, 205, min_fraction=0.5) is None
        assert lift.map_interval(105, 205, min_fraction=0.05) is not None

    def test_empty_interval_rejected(self):
        lift = LiftOver(make_chain("10="))
        with pytest.raises(ValueError):
            lift.map_interval(5, 5)


class TestCoverage:
    def test_coverage_fractions(self):
        lift = LiftOver(make_chain("10=10D10="))
        assert lift.coverage(100, 130) == pytest.approx(20 / 30)
        assert lift.coverage(110, 120) == 0.0
        assert lift.coverage(0, 10) == 0.0


class TestBestLift:
    def test_prefers_higher_scoring_chain(self):
        low = make_chain("50=", t_start=100, q_start=500)
        high_alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=100,
            target_end=150,
            query_start=900,
            query_end=950,
            score=9000,
            cigar=Cigar.parse("50="),
        )
        (high,) = build_chains([high_alignment])
        assert best_lift([low, high], 120) == 920

    def test_none_when_uncovered(self):
        chain = make_chain("10=")
        assert best_lift([chain], 5000) is None
