"""Chainer tests on synthetic block sets."""

import pytest

from repro.align import Alignment, Cigar
from repro.chain import GapCosts, build_chains


def block(t_start, q_start, length, score, strand=1, names=("t", "q")):
    return Alignment(
        target_name=names[0],
        query_name=names[1],
        target_start=t_start,
        target_end=t_start + length,
        query_start=q_start,
        query_end=q_start + length,
        score=score,
        cigar=Cigar.from_runs([("=", length)]),
        strand=strand,
    )


class TestChaining:
    def test_colinear_blocks_form_one_chain(self):
        blocks = [
            block(0, 0, 100, 5000),
            block(200, 210, 100, 5000),
            block(400, 420, 100, 5000),
        ]
        chains = build_chains(blocks)
        assert len(chains) == 1
        assert len(chains[0]) == 3
        assert chains[0].matches == 300

    def test_chain_score_subtracts_gap_costs(self):
        gap_costs = GapCosts.loose()
        blocks = [block(0, 0, 100, 5000), block(200, 200, 100, 5000)]
        (chain,) = build_chains(blocks, gap_costs)
        expected = 10000 - float(gap_costs.cost(100, 100))
        assert chain.score == pytest.approx(expected)

    def test_non_colinear_blocks_stay_separate(self):
        blocks = [
            block(0, 500, 100, 5000),
            block(500, 0, 100, 5000),  # crossed: cannot chain
        ]
        chains = build_chains(blocks)
        assert len(chains) == 2

    def test_distant_blocks_not_chained_when_gap_too_costly(self):
        blocks = [block(0, 0, 10, 400), block(500000, 500000, 10, 400)]
        chains = build_chains(blocks)
        # chaining would cost ~60k+; blocks stand alone
        assert len(chains) == 2

    def test_strands_partitioned(self):
        blocks = [block(0, 0, 50, 1000), block(100, 100, 50, 1000, strand=-1)]
        chains = build_chains(blocks)
        assert len(chains) == 2
        assert {c.strand for c in chains} == {1, -1}

    def test_sequences_partitioned(self):
        blocks = [
            block(0, 0, 50, 1000, names=("t1", "q")),
            block(100, 100, 50, 1000, names=("t2", "q")),
        ]
        assert len(build_chains(blocks)) == 2

    def test_min_score_filters(self):
        blocks = [block(0, 0, 10, 100)]
        assert build_chains(blocks, min_score=200) == []
        assert len(build_chains(blocks, min_score=50)) == 1

    def test_chains_sorted_by_score(self):
        blocks = [block(0, 0, 10, 100), block(1000, 5000, 100, 9000)]
        chains = build_chains(blocks)
        assert chains[0].score >= chains[1].score

    def test_each_block_used_once(self):
        blocks = [
            block(0, 0, 100, 5000),
            block(150, 150, 100, 5000),
            block(300, 300, 100, 5000),
            block(150, 450, 100, 5000),  # competes for the middle slot
        ]
        chains = build_chains(blocks)
        used = [b for c in chains for b in c.blocks]
        assert len(used) == len(set(id(b) for b in used)) == 4

    def test_empty_input(self):
        assert build_chains([]) == []


class TestChainProperties:
    def test_chain_coordinates(self):
        blocks = [block(10, 20, 50, 1000), block(100, 120, 50, 1000)]
        (chain,) = build_chains(blocks)
        assert chain.target_start == 10
        assert chain.target_end == 150
        assert chain.query_start == 20
        assert chain.query_end == 170

    def test_blocks_ordered_within_chain(self):
        blocks = [block(200, 220, 50, 2000), block(0, 0, 50, 2000)]
        (chain,) = build_chains(blocks)
        starts = [b.target_start for b in chain.blocks]
        assert starts == sorted(starts)

    def test_aligned_pairs(self):
        blocks = [block(0, 0, 30, 500)]
        (chain,) = build_chains(blocks)
        assert chain.aligned_pairs == 30


class TestPresortedFastPath:
    def _blocks(self):
        specs = [
            (300, 300, 80, 900, 1, ("t", "q")),
            (0, 0, 100, 1000, 1, ("t", "q")),
            (150, 160, 60, 700, -1, ("t", "q")),
            (500, 520, 90, 800, 1, ("t2", "q")),
            (120, 130, 70, 600, 1, ("t", "q")),
        ]
        return [
            block(t, q, ln, s, strand=st, names=n)
            for t, q, ln, s, st, n in specs
        ]

    def test_presorted_matches_default(self):
        blocks = self._blocks()
        # A stable global sort on (partition key, target, query) makes
        # every partition arrive in the order the chainer would sort to.
        ordered = sorted(
            blocks,
            key=lambda a: (
                a.target_name,
                a.query_name,
                a.strand,
                a.target_start,
                a.query_start,
            ),
        )
        assert build_chains(ordered, presorted=True) == build_chains(blocks)

    def test_unsorted_input_without_flag_still_sorted(self):
        blocks = self._blocks()
        chains = build_chains(blocks)
        for chain in chains:
            starts = [b.target_start for b in chain.blocks]
            assert starts == sorted(starts)
