"""LASTZ-like baseline pipeline tests."""

import pytest

from repro.chain import build_chains, total_matches
from repro.core import DarwinWGA
from repro.lastz import LastzAligner, LastzConfig


@pytest.fixture(scope="module")
def lastz_result(small_pair):
    return LastzAligner().align(
        small_pair.target.genome, small_pair.query.genome
    )


class TestLastzPipeline:
    def test_produces_alignments(self, lastz_result):
        assert len(lastz_result.alignments) > 0

    def test_alignments_verify(self, small_pair, lastz_result):
        for alignment in lastz_result.alignments:
            alignment.verify(
                small_pair.target.genome, small_pair.query.genome
            )

    def test_examines_every_seed_hit(self, lastz_result):
        # no D-SOFT banding: the filter workload equals the raw hit count
        assert (
            lastz_result.workload.filter_tiles
            == lastz_result.workload.seed_hits
        )

    def test_workload_recorded(self, lastz_result):
        assert lastz_result.workload.filter_cells > 0
        assert lastz_result.workload.anchors >= len(
            lastz_result.alignments
        )


class TestSensitivityComparison:
    def test_darwin_wga_at_least_as_sensitive(self, small_pair):
        """The paper's headline claim on a small mosaic pair."""
        target = small_pair.target.genome
        query = small_pair.query.genome
        darwin = DarwinWGA().align(target, query)
        lastz = LastzAligner().align(target, query)
        darwin_matches = total_matches(build_chains(darwin.alignments))
        lastz_matches = total_matches(build_chains(lastz.alignments))
        assert darwin_matches >= lastz_matches * 0.9

    def test_darwin_filter_workload_smaller(self, small_pair):
        """D-SOFT banding collapses hits; LASTZ examines all of them."""
        target = small_pair.target.genome
        query = small_pair.query.genome
        darwin = DarwinWGA().align(target, query)
        lastz = LastzAligner().align(target, query)
        assert (
            darwin.workload.filter_tiles < lastz.workload.filter_tiles
        )


class TestConfig:
    def test_plus_strand_only(self, small_pair):
        config = LastzConfig(both_strands=False)
        result = LastzAligner(config).align(
            small_pair.target.genome, small_pair.query.genome
        )
        assert all(a.strand == 1 for a in result.alignments)

    def test_extension_threshold_is_lastz_default(self):
        assert LastzConfig().extension.threshold == 3000
        assert LastzConfig().filtering.threshold == 3000
