"""Ungapped filter stage tests."""

import numpy as np
import pytest

from repro.align.matrices import lastz_default
from repro.genome import Sequence
from repro.lastz import UngappedFilterParams, ungapped_filter


@pytest.fixture
def scoring():
    return lastz_default()


class TestUngappedFilter:
    def test_clean_segment_passes(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 2000).astype(np.uint8), "t")
        q_codes = rng.integers(0, 4, 2000).astype(np.uint8)
        q_codes[700:800] = target.codes[500:600]
        query = Sequence(q_codes, "q")
        result = ungapped_filter(
            target,
            query,
            np.array([550]),
            np.array([750]),
            scoring,
            UngappedFilterParams(threshold=3000),
        )
        assert len(result.anchors) == 1
        assert result.anchors[0].filter_score >= 3000

    def test_gapped_segment_fails_ungapped_filter(self, scoring, rng):
        # the Darwin-WGA motivation: indel-dense homology under-scores
        core = rng.integers(0, 4, 400).astype(np.uint8)
        parts = []
        for start in range(0, 400, 25):
            parts.append(core[start : start + 25])
            parts.append(rng.integers(0, 4, 1).astype(np.uint8))
        q_core = np.concatenate(parts)
        target = Sequence(
            np.concatenate(
                [rng.integers(0, 4, 600).astype(np.uint8), core,
                 rng.integers(0, 4, 600).astype(np.uint8)]
            ),
            "t",
        )
        query = Sequence(
            np.concatenate(
                [rng.integers(0, 4, 600).astype(np.uint8), q_core,
                 rng.integers(0, 4, 600).astype(np.uint8)]
            ),
            "q",
        )
        result = ungapped_filter(
            target,
            query,
            np.array([610]),
            np.array([610]),
            scoring,
            UngappedFilterParams(threshold=3000),
        )
        assert result.anchors == []

    def test_duplicate_hits_on_hsp_merged(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 3000).astype(np.uint8), "t")
        q_codes = rng.integers(0, 4, 3000).astype(np.uint8)
        q_codes[1000:1200] = target.codes[1000:1200]
        query = Sequence(q_codes, "q")
        hits_t = np.array([1010, 1050, 1100, 1150])
        hits_q = hits_t.copy()
        result = ungapped_filter(
            target, query, hits_t, hits_q, scoring,
            UngappedFilterParams(threshold=3000),
        )
        assert len(result.anchors) == 1
        assert result.hits == 4

    def test_different_diagonals_kept(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 3000).astype(np.uint8), "t")
        q_codes = rng.integers(0, 4, 3000).astype(np.uint8)
        q_codes[500:600] = target.codes[500:600]
        q_codes[2000:2100] = target.codes[900:1000]
        query = Sequence(q_codes, "q")
        result = ungapped_filter(
            target,
            query,
            np.array([550, 950]),
            np.array([550, 2050]),
            scoring,
            UngappedFilterParams(threshold=3000),
        )
        assert len(result.anchors) == 2

    def test_empty_input(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 100).astype(np.uint8))
        result = ungapped_filter(
            target,
            target,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            scoring,
            UngappedFilterParams(),
        )
        assert result.anchors == []
        assert result.hits == 0

    def test_cells_accounted(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 1000).astype(np.uint8))
        params = UngappedFilterParams(max_extension=128)
        result = ungapped_filter(
            target,
            target,
            np.array([500]),
            np.array([500]),
            scoring,
            params,
        )
        # a self-hit extends the full budget in both directions, plus the
        # fixed X-drop overshoot
        assert result.cells >= 2 * 128
        assert result.cells <= 2 * 128 + 64

    def test_param_validation(self):
        with pytest.raises(ValueError):
            UngappedFilterParams(xdrop=-1)
        with pytest.raises(ValueError):
            UngappedFilterParams(max_extension=0)
