"""Good/bad fixtures for the PAR parallel-safety rules."""

from .helpers import lint_snippet, rules_of

PAR = ["PAR001", "PAR002"]


class TestLambdaTask:
    def test_flags_lambda_submitted_to_pool(self):
        findings = lint_snippet(
            """
            def fan_out(engine, items):
                return [engine.submit(lambda x: x * 2, item)
                        for item in items]
            """,
            select=PAR,
        )
        assert rules_of(findings) == ["PAR001"]


class TestNestedTask:
    def test_flags_closure_submitted_to_pool(self):
        findings = lint_snippet(
            """
            def fan_out(engine, items, scale):
                def task(x):
                    return x * scale
                return [engine.submit(task, item) for item in items]
            """,
            select=PAR,
        )
        assert rules_of(findings) == ["PAR002"]

    def test_flags_lambda_assigned_then_submitted(self):
        findings = lint_snippet(
            """
            def fan_out(engine, items):
                task = lambda x: x * 2
                return [engine.submit(task, item) for item in items]
            """,
            select=PAR,
        )
        assert rules_of(findings) == ["PAR002"]

    def test_module_level_task_passes(self):
        findings = lint_snippet(
            """
            def double_task(x):
                return x * 2

            def fan_out(engine, items):
                return [engine.submit(double_task, item)
                        for item in items]
            """,
            select=PAR,
        )
        assert findings == []


class TestUnboundedStageBuffer:
    PAR3 = ["PAR003"]

    def test_flags_bare_deque(self):
        findings = lint_snippet(
            """
            from collections import deque

            def stage():
                return deque()
            """,
            select=self.PAR3,
        )
        assert rules_of(findings) == ["PAR003"]

    def test_flags_deque_with_maxlen_none(self):
        findings = lint_snippet(
            """
            from collections import deque

            def stage(items):
                return deque(items, maxlen=None)
            """,
            select=self.PAR3,
        )
        assert rules_of(findings) == ["PAR003"]

    def test_deque_with_maxlen_passes(self):
        findings = lint_snippet(
            """
            from collections import deque

            def stage(window):
                return deque(maxlen=window)
            """,
            select=self.PAR3,
        )
        assert findings == []

    def test_flags_queue_without_maxsize(self):
        findings = lint_snippet(
            """
            import queue

            def stage():
                return queue.Queue()
            """,
            select=self.PAR3,
        )
        assert rules_of(findings) == ["PAR003"]

    def test_flags_queue_with_zero_maxsize(self):
        findings = lint_snippet(
            """
            import queue

            def stage():
                return queue.Queue(maxsize=0)
            """,
            select=self.PAR3,
        )
        assert rules_of(findings) == ["PAR003"]

    def test_flags_simplequeue_always(self):
        findings = lint_snippet(
            """
            import queue

            def stage():
                return queue.SimpleQueue()
            """,
            select=self.PAR3,
        )
        assert rules_of(findings) == ["PAR003"]

    def test_bounded_queue_passes(self):
        findings = lint_snippet(
            """
            import queue

            def stage():
                return queue.Queue(maxsize=8)
            """,
            select=self.PAR3,
        )
        assert findings == []

    def test_variable_maxsize_taken_on_trust(self):
        findings = lint_snippet(
            """
            import multiprocessing

            def stage(depth):
                return multiprocessing.Queue(depth)
            """,
            select=self.PAR3,
        )
        assert findings == []

    def test_suppression_with_reason_is_honoured(self):
        findings = lint_snippet(
            """
            from collections import deque

            def stage():
                return deque()  # repro: allow[PAR003] watermark-capped
            """,
            select=self.PAR3,
        )
        assert findings == []
