"""Good/bad fixtures for the PAR parallel-safety rules."""

from .helpers import lint_snippet, rules_of

PAR = ["PAR001", "PAR002"]


class TestLambdaTask:
    def test_flags_lambda_submitted_to_pool(self):
        findings = lint_snippet(
            """
            def fan_out(engine, items):
                return [engine.submit(lambda x: x * 2, item)
                        for item in items]
            """,
            select=PAR,
        )
        assert rules_of(findings) == ["PAR001"]


class TestNestedTask:
    def test_flags_closure_submitted_to_pool(self):
        findings = lint_snippet(
            """
            def fan_out(engine, items, scale):
                def task(x):
                    return x * scale
                return [engine.submit(task, item) for item in items]
            """,
            select=PAR,
        )
        assert rules_of(findings) == ["PAR002"]

    def test_flags_lambda_assigned_then_submitted(self):
        findings = lint_snippet(
            """
            def fan_out(engine, items):
                task = lambda x: x * 2
                return [engine.submit(task, item) for item in items]
            """,
            select=PAR,
        )
        assert rules_of(findings) == ["PAR002"]

    def test_module_level_task_passes(self):
        findings = lint_snippet(
            """
            def double_task(x):
                return x * 2

            def fan_out(engine, items):
                return [engine.submit(double_task, item)
                        for item in items]
            """,
            select=PAR,
        )
        assert findings == []
