"""OBS rules: ad-hoc sampling locality and worker stdout hygiene."""

from .helpers import lint_snippet, rules_of


class TestObs001AdhocSampling:
    def test_process_time_outside_obs_flagged(self):
        findings = lint_snippet(
            """
            import time

            def measure():
                return time.process_time()
            """,
            select=["OBS001"],
        )
        assert rules_of(findings) == ["OBS001"]

    def test_getrusage_outside_obs_flagged(self):
        findings = lint_snippet(
            """
            import resource

            def peak():
                return resource.getrusage(resource.RUSAGE_SELF)
            """,
            select=["OBS001"],
        )
        assert rules_of(findings) == ["OBS001"]

    def test_from_import_alias_resolved(self):
        findings = lint_snippet(
            """
            from time import process_time as cpu

            def measure():
                return cpu()
            """,
            select=["OBS001"],
        )
        assert rules_of(findings) == ["OBS001"]

    def test_repro_obs_modules_are_exempt(self):
        findings = lint_snippet(
            """
            import time

            def sample():
                return time.process_time()
            """,
            modname="repro.obs.resource",
            select=["OBS001"],
        )
        assert findings == []

    def test_wall_clocks_are_not_obs001_business(self):
        # perf_counter is DET003's concern; OBS001 must not double-flag.
        findings = lint_snippet(
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
            select=["OBS001"],
        )
        assert findings == []

    def test_suppression_comment_honoured(self):
        findings = lint_snippet(
            """
            import time

            def measure():
                return time.process_time()  # repro: allow[OBS001] calibration script
            """,
            select=["OBS001"],
        )
        assert findings == []


class TestObs002WorkerStdout:
    def test_print_in_task_function_flagged(self):
        findings = lint_snippet(
            """
            def align_unit_task(unit):
                print("starting", unit)
                return unit
            """,
            select=["OBS002"],
        )
        assert rules_of(findings) == ["OBS002"]

    def test_stdout_write_in_worker_module_flagged(self):
        findings = lint_snippet(
            """
            import sys

            def helper():
                sys.stdout.write("hello")
            """,
            modname="repro.parallel.worker",
            select=["OBS002"],
        )
        assert rules_of(findings) == ["OBS002"]

    def test_print_with_explicit_stdout_file_flagged(self):
        findings = lint_snippet(
            """
            import sys

            def extend_batch_task(batch):
                print("batch", file=sys.stdout)
            """,
            select=["OBS002"],
        )
        assert rules_of(findings) == ["OBS002"]

    def test_print_to_stderr_allowed(self):
        findings = lint_snippet(
            """
            import sys

            def align_unit_task(unit):
                print("debug", file=sys.stderr)
            """,
            select=["OBS002"],
        )
        assert findings == []

    def test_print_outside_worker_code_allowed(self):
        findings = lint_snippet(
            """
            def render_summary(report):
                print(report)
            """,
            select=["OBS002"],
        )
        assert findings == []

    def test_suppression_comment_honoured(self):
        findings = lint_snippet(
            """
            def debug_task(unit):
                print(unit)  # repro: allow[OBS002] one-off debug helper
            """,
            select=["OBS002"],
        )
        assert findings == []
