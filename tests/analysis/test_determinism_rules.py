"""Good/bad fixtures for the DET determinism rules."""

from .helpers import lint_snippet, rules_of

DET = ["DET001", "DET002", "DET003", "DET004"]


class TestUnseededRng:
    def test_flags_default_rng_without_seed(self):
        findings = lint_snippet(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET001"]

    def test_flags_stdlib_random_without_seed(self):
        findings = lint_snippet(
            """
            import random
            rng = random.Random()
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET001"]

    def test_flags_aliased_import(self):
        findings = lint_snippet(
            """
            from numpy.random import default_rng as make_rng
            rng = make_rng()
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET001"]

    def test_seeded_constructors_pass(self):
        findings = lint_snippet(
            """
            import random
            import numpy as np

            def sample(seed: int):
                rng = np.random.default_rng(seed)
                legacy = random.Random(seed)
                return rng, legacy
            """,
            select=DET,
        )
        assert findings == []


class TestGlobalRng:
    def test_flags_numpy_module_functions(self):
        findings = lint_snippet(
            """
            import numpy as np
            noise = np.random.rand(10)
            np.random.shuffle(noise)
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET002", "DET002"]

    def test_flags_global_seeding(self):
        findings = lint_snippet(
            """
            import random
            import numpy as np
            random.seed(0)
            np.random.seed(0)
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET002", "DET002"]

    def test_generator_methods_pass(self):
        findings = lint_snippet(
            """
            import numpy as np

            def jitter(rng: np.random.Generator):
                return rng.random(4)
            """,
            select=DET,
        )
        assert findings == []


class TestWallClock:
    def test_flags_time_and_datetime(self):
        findings = lint_snippet(
            """
            import time
            from datetime import datetime
            stamp = time.time()
            now = datetime.now()
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET003", "DET003"]

    def test_obs_package_is_exempt(self):
        findings = lint_snippet(
            """
            from time import perf_counter
            tick = perf_counter()
            """,
            modname="repro.obs.tracer",
            select=DET,
        )
        assert findings == []

    def test_same_code_outside_obs_is_flagged(self):
        findings = lint_snippet(
            """
            from time import perf_counter
            tick = perf_counter()
            """,
            modname="repro.seed.cache",
            select=DET,
        )
        assert rules_of(findings) == ["DET003"]


class TestSetIteration:
    def test_flags_for_loop_over_set_call(self):
        findings = lint_snippet(
            """
            def emit(names):
                for name in set(names):
                    yield name
            """,
            select=DET,
        )
        assert rules_of(findings) == ["DET004"]

    def test_flags_list_of_set_and_join(self):
        findings = lint_snippet(
            """
            def render(names):
                order = list({n.lower() for n in names})
                return ",".join(set(names)), order
            """,
            select=DET,
        )
        # set-comp iterated by list() and set() iterated by join()
        assert rules_of(findings) == ["DET004", "DET004"]

    def test_sorted_set_passes(self):
        findings = lint_snippet(
            """
            def emit(names):
                for name in sorted(set(names)):
                    yield name
            """,
            select=DET,
        )
        assert findings == []

    def test_set_membership_passes(self):
        findings = lint_snippet(
            """
            def dedup(pairs):
                seen = set()
                out = []
                for pair in pairs:
                    if pair not in seen:
                        seen.add(pair)
                        out.append(pair)
                return out
            """,
            select=DET,
        )
        assert findings == []
