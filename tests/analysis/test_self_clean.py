"""The linter's own acceptance gate: the real tree must be clean.

Every suppression in the tree must carry a reason (SUP001 would fire
otherwise), and every finding must be either fixed or deliberately
suppressed — CI runs the same check via ``repro lint --format json``.
"""

import json
from pathlib import Path

from repro.analysis import analyze_paths, render_json

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_exists():
    assert SRC.is_dir()


def test_src_tree_has_zero_unsuppressed_findings():
    result = analyze_paths([SRC])
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro lint found violations:\n{rendered}"


def test_every_suppression_in_tree_has_a_reason():
    result = analyze_paths([SRC])
    # SUP001 findings are unsuppressible, so a clean result already
    # implies reasons everywhere; double-check the parsed comments too.
    from repro.analysis.engine import collect_files, load_module

    for path in collect_files([SRC]):
        module = load_module(path)
        for comment in module.suppressions.comments:
            assert comment.reason, (
                f"{path}:{comment.line} suppression without a reason"
            )
            assert comment.rules, (
                f"{path}:{comment.line} suppression without rule ids"
            )


def test_layer_map_covers_every_package():
    from repro.analysis import RANKS

    packages = {
        child.name
        for child in SRC.iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert packages <= set(RANKS), (
        f"packages missing from the layer map: {sorted(packages - set(RANKS))}"
    )


def test_src_tree_is_flow_clean():
    result = analyze_paths([SRC], flow=True)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro lint --flow found violations:\n{rendered}"
    assert result.flow_context is not None


def test_flow_pass_covers_the_whole_tree():
    result = analyze_paths([SRC], flow=True)
    graph = result.flow_context.graph
    # The graph must actually see the tree: every worker task and the
    # DP kernels are registered, and effect inference ran over them.
    assert "repro.core.worker.align_unit_task" in graph.functions
    assert "repro.align._dp.kernel_dtype" in graph.functions
    effects = result.flow_context.effects
    assert effects.effects, "effect inference found nothing at all"


def test_json_report_round_trips():
    result = analyze_paths([SRC])
    payload = json.loads(render_json(result))
    assert payload["ok"] is True
    assert payload["version"] == 1
    assert payload["files"] == len(result.files)
    assert payload["findings"] == []
