"""Suppression-comment parsing, scoping, and meta-linting."""

from .helpers import lint_snippet, rules_of


class TestSuppressionScope:
    def test_trailing_comment_suppresses_its_line(self):
        findings = lint_snippet(
            """
            def emit(names):  # noqa-free zone
                for n in set(names):  # repro: allow[DET004] output is order-insensitive here
                    yield n
            """,
            select=["DET004"],
        )
        assert findings == []

    def test_standalone_comment_suppresses_next_line(self):
        findings = lint_snippet(
            """
            def emit(names):
                # repro: allow[DET004] output is order-insensitive here
                for n in set(names):
                    yield n
            """,
            select=["DET004"],
        )
        assert findings == []

    def test_allow_file_suppresses_whole_file(self):
        findings = lint_snippet(
            """
            # repro: allow-file[KER005] demo script output
            def a():
                print("a")

            def b():
                print("b")
            """,
            modname="repro.seed.demo",
            select=["KER005"],
        )
        assert findings == []

    def test_suppression_is_rule_specific(self):
        findings = lint_snippet(
            """
            def emit(names):
                for n in set(names):  # repro: allow[KER005] wrong rule id on purpose
                    yield n
            """,
            select=["DET004", "KER005"],
        )
        assert rules_of(findings) == ["DET004"]

    def test_suppressed_findings_are_still_recorded(self):
        from repro.analysis import analyze_sources

        result = analyze_sources(
            {
                "repro.seed.demo": (
                    "def emit(names):\n"
                    "    # repro: allow[DET004] order-insensitive\n"
                    "    return list(set(names))\n"
                )
            },
            select=["DET004"],
        )
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["DET004"]


class TestSuppressionMetaLint:
    def test_reasonless_suppression_is_a_finding(self):
        findings = lint_snippet(
            """
            def emit(names):
                for n in set(names):  # repro: allow[DET004]
                    yield n
            """,
            select=["DET004"],
        )
        # The DET004 finding is suppressed, but the reasonless
        # suppression itself is reported — and cannot be suppressed.
        assert rules_of(findings) == ["SUP001"]

    def test_unknown_rule_id_is_a_finding(self):
        findings = lint_snippet(
            """
            x = 1  # repro: allow[NOPE99] such a rule does not exist
            """,
            select=["DET004"],
        )
        assert rules_of(findings) == ["SUP002"]

    def test_multiple_rules_one_comment(self):
        findings = lint_snippet(
            """
            def emit(names):
                # repro: allow[DET004, KER005] deliberate fixture
                return [print(n) for n in set(names)]
            """,
            modname="repro.seed.demo",
            select=["DET004", "KER005"],
        )
        assert findings == []
