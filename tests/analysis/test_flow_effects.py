"""Effect inference: intrinsic detection, fixed-point convergence on
(mutual) recursion, sanctioned layers, and chain reconstruction."""

from .helpers import flow_context


def kinds(ctx, qualname):
    return ctx.effects.effect_kinds(qualname)


def test_intrinsic_kinds_are_detected():
    ctx = flow_context(
        {
            "repro.core.fx": """
            import os
            import time
            import numpy as np

            _CACHE = {}

            def roll():
                return np.random.default_rng()

            def tick():
                return time.time()

            def shout(x):
                print(x)

            def dump(path, data):
                with open(path, "w") as fh:
                    fh.write(data)

            def stash(key, value):
                _CACHE[key] = value

            def peek():
                return os.environ["HOME"]
            """,
        }
    )
    assert kinds(ctx, "repro.core.fx.roll") == ("rng",)
    assert kinds(ctx, "repro.core.fx.tick") == ("clock",)
    assert kinds(ctx, "repro.core.fx.shout") == ("stdout",)
    assert kinds(ctx, "repro.core.fx.dump") == ("fs-write",)
    assert kinds(ctx, "repro.core.fx.stash") == ("global-mut",)
    assert kinds(ctx, "repro.core.fx.peek") == ("env",)


def test_seeded_rng_is_not_an_effect():
    ctx = flow_context(
        {
            "repro.core.seeded": """
            import numpy as np

            def roll(seed):
                return np.random.default_rng(seed)
            """,
        }
    )
    assert kinds(ctx, "repro.core.seeded.roll") == ()


def test_effects_propagate_through_call_chain():
    ctx = flow_context(
        {
            "repro.core.chain": """
            import time

            def leaf():
                return time.time()

            def mid():
                return leaf()

            def top():
                return mid()
            """,
        }
    )
    assert kinds(ctx, "repro.core.chain.top") == ("clock",)
    chain = ctx.effects.describe_chain("repro.core.chain.top", "clock")
    assert "repro.core.chain.mid" in chain
    assert "time.time" in chain


def test_direct_recursion_converges():
    ctx = flow_context(
        {
            "repro.core.rec": """
            import time

            def spin(n):
                if n == 0:
                    return time.time()
                return spin(n - 1)
            """,
        }
    )
    assert kinds(ctx, "repro.core.rec.spin") == ("clock",)


def test_mutual_recursion_converges_and_shares_effects():
    ctx = flow_context(
        {
            "repro.core.mut": """
            import numpy as np

            def ping(n):
                if n == 0:
                    return np.random.default_rng()
                return pong(n - 1)

            def pong(n):
                return ping(n - 1)

            def clean(n):
                if n == 0:
                    return 0
                return clean_twin(n - 1)

            def clean_twin(n):
                return clean(n - 1)
            """,
        }
    )
    assert kinds(ctx, "repro.core.mut.ping") == ("rng",)
    assert kinds(ctx, "repro.core.mut.pong") == ("rng",)
    # A pure mutually-recursive pair must converge to no effects,
    # not loop or over-approximate.
    assert kinds(ctx, "repro.core.mut.clean") == ()
    assert kinds(ctx, "repro.core.mut.clean_twin") == ()


def test_sanctioned_layer_absorbs_its_effects():
    ctx = flow_context(
        {
            "repro.obs.tracer": """
            import time

            def span_start():
                return time.monotonic()
            """,
            "repro.core.user": """
            from repro.obs.tracer import span_start

            def work():
                return span_start()
            """,
        }
    )
    # The clock is sanctioned inside repro.obs, so neither the tracer
    # nor its caller carries the effect — but the site is recorded.
    assert kinds(ctx, "repro.obs.tracer.span_start") == ()
    assert kinds(ctx, "repro.core.user.work") == ()
    sanctioned = ctx.effects.sanctioned["repro.obs.tracer.span_start"]
    assert [s.kind for s in sanctioned] == ["clock"]


def test_base_rule_suppression_sanctions_the_effect():
    ctx = flow_context(
        {
            "repro.core.timed": """
            import time

            def stamp():
                return time.time()  # repro: allow[DET003] log timestamp only
            """,
        }
    )
    assert kinds(ctx, "repro.core.timed.stamp") == ()


def test_global_declaration_assignment_is_global_mut():
    ctx = flow_context(
        {
            "repro.core.glob": """
            _STATE = 0

            def bump():
                global _STATE
                _STATE = _STATE + 1
            """,
        }
    )
    assert kinds(ctx, "repro.core.glob.bump") == ("global-mut",)


def test_local_shadow_of_module_name_is_not_global_mut():
    ctx = flow_context(
        {
            "repro.core.shadow": """
            table = {}

            def pure():
                table = {}
                table["k"] = 1
                return table
            """,
        }
    )
    assert kinds(ctx, "repro.core.shadow.pure") == ()
