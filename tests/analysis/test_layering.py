"""Fixtures for the LAY layering rules, including a synthetic cycle."""

from .helpers import lint_tree, rules_of

LAY = ["LAY001", "LAY002", "LAY003", "LAY004", "LAY005"]


class TestLayerOrder:
    def test_upward_import_is_rejected(self):
        findings = lint_tree(
            {
                "repro.align.kernel": "from ..hw import systolic\n",
                "repro.hw.systolic": "",
            },
            select=LAY,
        )
        assert rules_of(findings) == ["LAY001"]
        assert "align (layer 3) imports hw (layer 6)" in findings[0].message

    def test_downward_and_equal_rank_imports_pass(self):
        findings = lint_tree(
            {
                "repro.lastz.pipeline": (
                    "from ..core.extension import extend_anchors\n"
                    "from ..seed.index import SeedIndex\n"
                ),
                "repro.core.extension": "from ..align import cigar\n",
                "repro.seed.index": "from ..genome import sequence\n",
                "repro.align.cigar": "",
                "repro.genome.sequence": "",
            },
            select=LAY,
        )
        assert findings == []

    def test_deferred_function_level_import_is_allowed(self):
        findings = lint_tree(
            {
                "repro.core.pipeline": (
                    "def make_engine(workers):\n"
                    "    from ..parallel.engine import ExecutionEngine\n"
                    "    return ExecutionEngine(workers)\n"
                ),
                "repro.parallel.engine": "class ExecutionEngine:\n    pass\n",
            },
            select=LAY,
        )
        assert findings == []

    def test_type_checking_import_is_allowed(self):
        findings = lint_tree(
            {
                "repro.core.pipeline": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from ..parallel.engine import ExecutionEngine\n"
                ),
                "repro.parallel.engine": "",
            },
            select=LAY,
        )
        assert findings == []


class TestImportCycle:
    def test_synthetic_cycle_is_rejected(self):
        findings = lint_tree(
            {
                "repro.core.pipeline": (
                    "from .extension import extend_anchors\n"
                ),
                "repro.core.extension": "from .worker import task\n",
                "repro.core.worker": "from .pipeline import Workload\n",
            },
            select=LAY,
        )
        assert rules_of(findings) == ["LAY002"]
        message = findings[0].message
        for member in (
            "repro.core.pipeline",
            "repro.core.extension",
            "repro.core.worker",
        ):
            assert member in message

    def test_acyclic_chain_passes(self):
        findings = lint_tree(
            {
                "repro.core.pipeline": (
                    "from .extension import extend_anchors\n"
                ),
                "repro.core.extension": "from .worker import task\n",
                "repro.core.worker": "",
            },
            select=LAY,
        )
        assert findings == []


class TestSelfContained:
    def test_obs_importing_genome_is_rejected(self):
        findings = lint_tree(
            {
                "repro.obs.tracer": "from ..genome import sequence\n",
                "repro.genome.sequence": "",
            },
            select=LAY,
        )
        # Upward (obs is rank 0) and self-containment are both violated.
        assert rules_of(findings) == ["LAY001", "LAY003"]

    def test_obs_internal_imports_pass(self):
        findings = lint_tree(
            {
                "repro.obs.__init__": "from .tracer import Tracer\n",
                "repro.obs.tracer": "class Tracer:\n    pass\n",
            },
            select=LAY,
        )
        assert findings == []


class TestCliTopOnly:
    def test_importing_the_cli_is_rejected(self):
        findings = lint_tree(
            {
                "repro.seed.index": "from ..cli import main\n",
                "repro.cli": "def main():\n    return 0\n",
            },
            select=LAY,
        )
        # Upward (cli is the top rank) and top-only are both violated.
        assert rules_of(findings) == ["LAY001", "LAY004"]


class TestUnmappedPackage:
    def test_new_subpackage_must_be_ranked(self):
        findings = lint_tree(
            {"repro.mystery.thing": "x = 1\n"},
            select=LAY,
        )
        assert rules_of(findings) == ["LAY005"]
        assert "repro.mystery" in findings[0].message
