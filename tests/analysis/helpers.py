"""Shared helpers for the static-analysis rule tests."""

from __future__ import annotations

import textwrap
from typing import Dict, List, Optional, Sequence

from repro.analysis import Finding, analyze_sources


def lint_snippet(
    source: str,
    modname: str = "repro.seed.snippet",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one dedented snippet under a virtual module name."""
    result = analyze_sources(
        {modname: textwrap.dedent(source)}, select=select
    )
    return result.findings


def lint_tree(
    sources: Dict[str, str],
    select: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> List[Finding]:
    """Lint a virtual multi-module tree (for the project rules)."""
    return analyze_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()},
        select=select,
        flow=flow,
    ).findings


def flow_context(sources: Dict[str, str]):
    """Build a FlowContext over a dedented virtual tree."""
    from repro.analysis import build_flow_context
    from repro.analysis.engine import make_module

    modules = [
        make_module(
            textwrap.dedent(src), name, name.replace(".", "/") + ".py"
        )
        for name, src in sources.items()
    ]
    return build_flow_context(modules)


def rules_of(findings: List[Finding]) -> List[str]:
    return sorted(f.rule for f in findings)
