"""Good/bad fixtures for the RES resilience-hygiene rules."""

from .helpers import lint_snippet, rules_of

RES = ["RES001"]


class TestSwallowedException:
    def test_flags_except_exception_pass(self):
        findings = lint_snippet(
            """
            def fragile():
                try:
                    risky()
                except Exception:
                    pass
            """,
            modname="repro.resilience.bad",
            select=RES,
        )
        assert rules_of(findings) == ["RES001"]

    def test_flags_base_exception_with_ellipsis_body(self):
        findings = lint_snippet(
            """
            def fragile():
                try:
                    risky()
                except BaseException:
                    ...
            """,
            modname="repro.resilience.bad",
            select=RES,
        )
        assert rules_of(findings) == ["RES001"]

    def test_flags_broad_member_of_tuple(self):
        findings = lint_snippet(
            """
            def fragile():
                try:
                    risky()
                except (ValueError, Exception):
                    pass
            """,
            modname="repro.resilience.bad",
            select=RES,
        )
        assert rules_of(findings) == ["RES001"]

    def test_narrow_handler_passes(self):
        findings = lint_snippet(
            """
            import os

            def best_effort_unlink(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            """,
            modname="repro.resilience.good",
            select=RES,
        )
        assert findings == []

    def test_handler_that_acts_passes(self):
        findings = lint_snippet(
            """
            def guarded(stats):
                try:
                    return risky()
                except Exception:
                    stats.failures += 1
                    raise
            """,
            modname="repro.resilience.good",
            select=RES,
        )
        assert findings == []

    def test_bare_except_left_to_ker004(self):
        findings = lint_snippet(
            """
            def fragile():
                try:
                    risky()
                except:
                    pass
            """,
            modname="repro.resilience.bad",
            select=RES,
        )
        assert findings == []

    def test_suppression_comment_silences(self):
        findings = lint_snippet(
            """
            def shutdown_hook():
                try:
                    flush()
                except Exception:  # repro: allow[RES001] atexit must not raise
                    pass
            """,
            modname="repro.resilience.good",
            select=RES,
        )
        assert findings == []
