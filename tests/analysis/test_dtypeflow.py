"""KER006 dtype-lattice: join behaviour and narrowing detection."""

from .helpers import lint_tree, rules_of

from repro.analysis.flow.dtypeflow import (
    DP_VALUE_BOUND,
    SYMBOLIC,
    UNKNOWN,
    Dtype,
    join,
)

# ---------------------------------------------------------------------------
# The lattice itself.
# ---------------------------------------------------------------------------


def test_join_picks_the_wider_dtype():
    assert join(Dtype(name="int16"), Dtype(name="int64")).name == "int64"
    assert join(Dtype(name="int64"), Dtype(name="int16")).name == "int64"
    assert (
        join(Dtype(name="float16"), Dtype(name="int32")).name == "int32"
    )


def test_join_is_commutative_and_idempotent():
    a, b = Dtype(name="int32"), Dtype(name="float64")
    assert join(a, b) == join(b, a)
    assert join(a, a) == a


def test_unknown_is_the_identity_and_symbolic_absorbs():
    a = Dtype(name="int16")
    assert join(a, UNKNOWN) == a
    assert join(UNKNOWN, a) == a
    assert join(a, SYMBOLIC).symbolic
    assert join(SYMBOLIC, UNKNOWN).symbolic


def test_capacity_ordering_matches_the_dp_bound():
    # The whole point of the rule: these cannot hold a DP value.
    for narrow in ("int8", "int16", "float16"):
        assert Dtype(name=narrow).capacity < DP_VALUE_BOUND
    for wide in ("int32", "int64", "float64"):
        assert Dtype(name=wide).capacity > DP_VALUE_BOUND


# ---------------------------------------------------------------------------
# KER006 through the linter.
# ---------------------------------------------------------------------------


def test_ker006_fires_on_out_kwarg_narrowing():
    tree = {
        "repro.align.packed": """
        import numpy as np

        def sweep(n):
            wide = np.zeros(n, dtype=np.int64)
            row = np.zeros(n, dtype=np.int16)  # repro: allow[KER001] packed demo
            np.add(wide, wide, out=row)
            return row
        """,
    }
    findings = lint_tree(tree, select=["KER006"], flow=True)
    assert rules_of(findings) == ["KER006"]
    assert "int64" in findings[0].message
    assert "int16" in findings[0].message


def test_ker006_fires_on_slice_store_narrowing():
    tree = {
        "repro.align.packed": """
        import numpy as np

        def shift(n):
            wide = np.zeros(n, dtype=np.int64)
            row = np.zeros(n, dtype=np.float16)  # repro: allow[KER001] packed demo
            row[1:] = wide[:-1]
            return row
        """,
    }
    findings = lint_tree(tree, select=["KER006"], flow=True)
    assert rules_of(findings) == ["KER006"]


def test_ker006_quiet_on_kernel_dtype_symbolic_storage():
    tree = {
        "repro.align.kern": """
        import numpy as np
        from repro.align._dp import kernel_dtype

        def sweep(scoring, n):
            dtype = kernel_dtype(scoring, n)
            wide = np.zeros(n, dtype=np.int64)
            row = np.zeros(n, dtype=dtype)
            np.add(wide, wide, out=row)
            row[1:] = wide[:-1]
            return row
        """,
    }
    # kernel_dtype() proved the bound before narrowing: sanctioned.
    assert lint_tree(tree, select=["KER006"], flow=True) == []


def test_ker006_quiet_on_widening_store():
    tree = {
        "repro.align.widen": """
        import numpy as np

        def up(n):
            narrow = np.zeros(n, dtype=np.uint8)
            wide = np.zeros(n, dtype=np.int64)
            np.add(narrow, narrow, out=wide)
            wide[1:] = narrow[:-1]
            return wide
        """,
    }
    assert lint_tree(tree, select=["KER006"], flow=True) == []


def test_ker006_quiet_outside_align_and_in_reference_oracle():
    body = """
    import numpy as np

    def sweep(n):
        wide = np.zeros(n, dtype=np.int64)
        row = np.zeros(n, dtype=np.int16)
        np.add(wide, wide, out=row)
        return row
    """
    assert (
        lint_tree({"repro.seed.other": body}, select=["KER006"], flow=True)
        == []
    )
    assert (
        lint_tree(
            {"repro.align._reference": body}, select=["KER006"], flow=True
        )
        == []
    )


def test_ker006_respects_line_suppression():
    tree = {
        "repro.align.packed": """
        import numpy as np

        def sweep(n):
            wide = np.zeros(n, dtype=np.int64)
            row = np.zeros(n, dtype=np.int16)  # repro: allow[KER001] packed demo
            np.add(wide, wide, out=row)  # repro: allow[KER006] inputs pre-clamped to i16
            return row
        """,
    }
    assert lint_tree(tree, select=["KER006"], flow=True) == []
