"""Good/bad fixtures for the KER kernel-hygiene rules."""

from .helpers import lint_snippet, rules_of

KER = ["KER001", "KER002", "KER003", "KER004", "KER005"]


class TestNarrowDtype:
    def test_flags_int16_dp_matrix_in_align(self):
        findings = lint_snippet(
            """
            import numpy as np

            def kernel(n, m):
                scores = np.zeros((n, m), dtype=np.int16)
                return scores
            """,
            modname="repro.align.bad_kernel",
            select=KER,
        )
        assert rules_of(findings) == ["KER001"]

    def test_flags_astype_narrowing_and_string_dtype(self):
        findings = lint_snippet(
            """
            import numpy as np

            def narrow(h):
                return h.astype(np.int8), np.empty(4, dtype="int16")
            """,
            modname="repro.align.bad_kernel",
            select=KER,
        )
        assert rules_of(findings) == ["KER001", "KER001"]

    def test_uint8_pointers_pass(self):
        findings = lint_snippet(
            """
            import numpy as np

            def traceback(m):
                pointers = np.zeros(m + 1, dtype=np.uint8)
                scores = np.zeros(m + 1, dtype=np.int64)
                return pointers, scores
            """,
            modname="repro.align.good_kernel",
            select=KER,
        )
        assert findings == []

    def test_rule_scoped_to_align(self):
        findings = lint_snippet(
            """
            import numpy as np
            tiny = np.zeros(4, dtype=np.int16)
            """,
            modname="repro.hw.model",
            select=KER,
        )
        assert findings == []

    def test_reference_oracle_module_is_exempt(self):
        findings = lint_snippet(
            """
            import numpy as np

            def kernel(a, b):
                scores = np.zeros((4, 4), dtype=np.int16)
                for i in range(len(a)):
                    for j in range(len(b)):
                        scores[i % 4, j % 4] += 1
                return scores
            """,
            modname="repro.align._reference",
            select=KER,
        )
        assert findings == []


class TestNestedLoop:
    def test_flags_loop_over_both_axes(self):
        findings = lint_snippet(
            """
            def kernel(a, b, score):
                best = 0
                for i in range(len(a)):
                    for j in range(len(b)):
                        best = max(best, score(a[i], b[j]))
                return best
            """,
            modname="repro.align.bad_kernel",
            select=KER,
        )
        assert rules_of(findings) == ["KER002"]

    def test_single_row_loop_passes(self):
        findings = lint_snippet(
            """
            def kernel(a, rows):
                for i in range(1, len(a) + 1):
                    rows[i] = rows[i - 1] + 1
                return rows
            """,
            modname="repro.align.good_kernel",
            select=KER,
        )
        assert findings == []


class TestMutableDefault:
    def test_flags_literal_and_constructor_defaults(self):
        findings = lint_snippet(
            """
            def collect(item, bucket=[], index={}):
                bucket.append(item)
                return bucket, index

            def gather(item, seen=set()):
                seen.add(item)
                return seen
            """,
            select=KER,
        )
        assert rules_of(findings) == ["KER003", "KER003", "KER003"]

    def test_none_default_passes(self):
        findings = lint_snippet(
            """
            def collect(item, bucket=None):
                bucket = [] if bucket is None else bucket
                bucket.append(item)
                return bucket
            """,
            select=KER,
        )
        assert findings == []


class TestBareExcept:
    def test_flags_bare_except(self):
        findings = lint_snippet(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            select=KER,
        )
        assert rules_of(findings) == ["KER004"]

    def test_typed_except_passes(self):
        findings = lint_snippet(
            """
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """,
            select=KER,
        )
        assert findings == []


class TestStrayPrint:
    def test_flags_print_in_library_code(self):
        findings = lint_snippet(
            """
            def debug(x):
                print("value", x)
            """,
            modname="repro.seed.debug",
            select=KER,
        )
        assert rules_of(findings) == ["KER005"]

    def test_cli_module_is_exempt(self):
        findings = lint_snippet(
            """
            def report(x):
                print("value", x)
            """,
            modname="repro.cli",
            select=KER,
        )
        assert findings == []
