"""Seed-audit: stochastic entry points must thread explicit RNG state.

Two layers of defence: the DET rules prove no module touches global
RNG state, and a signature audit pins the ``rng`` parameter on every
stochastic entry point so a refactor cannot quietly drop it (the
paper's sensitivity comparisons depend on regenerating identical
synthetic species pairs from a seed).
"""

import inspect
from pathlib import Path

import pytest

from repro.analysis import analyze_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

STOCHASTIC_ENTRY_POINTS = [
    ("repro.genome.evolution", "evolve"),
    ("repro.genome.evolution", "plant_exons"),
    ("repro.genome.evolution", "sample_islands"),
    ("repro.genome.evolution", "make_species_pair"),
    ("repro.genome.shuffle", "shuffle_preserving_kmers"),
    ("repro.genome.synthesis", "uniform_genome"),
    ("repro.genome.synthesis", "markov_genome"),
    ("repro.genome.synthesis", "plant_repeats"),
    ("repro.genome.assembly", "split_into_chromosomes"),
    ("repro.seed.analysis", "monte_carlo_sensitivity"),
    ("repro.align.stats", "estimate_k"),
]


def test_stochastic_modules_never_touch_global_rng():
    targets = [
        SRC / "genome",
        SRC / "seed",
        SRC / "align" / "stats.py",
    ]
    result = analyze_paths(targets, select=["DET001", "DET002"])
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"global/unseeded RNG crept in:\n{rendered}"
    # Not even a suppressed one: randomness here is part of the
    # reproducibility contract, never an acceptable exception.
    assert result.suppressed == []


@pytest.mark.parametrize("modname,funcname", STOCHASTIC_ENTRY_POINTS)
def test_entry_point_threads_rng(modname, funcname):
    module = __import__(modname, fromlist=[funcname])
    function = getattr(module, funcname)
    parameters = inspect.signature(function).parameters
    assert "rng" in parameters, (
        f"{modname}.{funcname} lost its explicit rng parameter"
    )
