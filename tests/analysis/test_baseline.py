"""--baseline diff mode: only findings new since a snapshot gate."""

import json
import textwrap

from repro.analysis import analyze_sources, render_json
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_fingerprints,
    split_by_baseline,
)

_DIRTY = {
    "repro.seed.legacy": textwrap.dedent(
        """
        import random

        def roll():
            return random.random()
        """
    ),
}


def _result():
    return analyze_sources(dict(_DIRTY))


def test_fingerprint_ignores_line_numbers():
    result = _result()
    finding = result.findings[0]
    assert fingerprint(finding) == (
        finding.rule,
        finding.path,
        finding.message,
    )


def test_round_trip_through_json_report(tmp_path):
    result = _result()
    assert result.findings, "fixture must produce findings"
    baseline_file = tmp_path / "findings.json"
    baseline_file.write_text(render_json(result), encoding="utf-8")
    prints = load_fingerprints(baseline_file)
    new, old = split_by_baseline(result.findings, prints)
    assert new == []
    assert old == result.findings


def test_apply_baseline_demotes_known_findings(tmp_path):
    result = _result()
    baseline_file = tmp_path / "findings.json"
    baseline_file.write_text(render_json(result), encoding="utf-8")

    fresh = _result()
    apply_baseline(fresh, baseline_file)
    assert fresh.findings == []
    assert fresh.ok
    assert len(fresh.baselined) == len(result.findings)


def test_new_findings_survive_the_baseline(tmp_path):
    result = _result()
    baseline_file = tmp_path / "findings.json"
    baseline_file.write_text(render_json(result), encoding="utf-8")

    grown = dict(_DIRTY)
    grown["repro.seed.fresh"] = textwrap.dedent(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    current = analyze_sources(grown)
    apply_baseline(current, baseline_file)
    assert current.findings, "the new finding must still gate"
    assert all(
        f.path == "repro/seed/fresh.py" for f in current.findings
    )
    assert current.baselined, "the old finding is demoted, not lost"


def test_bare_list_baseline_is_accepted(tmp_path):
    result = _result()
    baseline_file = tmp_path / "bare.json"
    baseline_file.write_text(
        json.dumps([f.to_dict() for f in result.findings]),
        encoding="utf-8",
    )
    fresh = _result()
    apply_baseline(fresh, baseline_file)
    assert fresh.findings == []


def test_baselined_counts_surface_in_reports(tmp_path):
    result = _result()
    baseline_file = tmp_path / "findings.json"
    baseline_file.write_text(render_json(result), encoding="utf-8")
    fresh = _result()
    apply_baseline(fresh, baseline_file)
    payload = json.loads(render_json(fresh))
    assert payload["ok"] is True
    assert len(payload["baselined"]) == len(result.findings)
