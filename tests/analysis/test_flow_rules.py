"""FLOW001–FLOW003: one true positive and one true negative each,
plus the suppression interactions the rules promise."""

from .helpers import lint_tree, rules_of

# ---------------------------------------------------------------------------
# FLOW001
# ---------------------------------------------------------------------------

_RNG_CHAIN = {
    "repro.core.tasks": """
    import numpy as np

    def _jitter():
        return np.random.default_rng()

    def crunch_task(x):
        return _jitter().integers(0, x)
    """,
    "repro.core.driver": """
    from repro.core.tasks import crunch_task

    def run(engine):
        return engine.submit(crunch_task, 8)
    """,
}


def test_flow001_fires_on_transitive_rng_in_submitted_task():
    findings = lint_tree(_RNG_CHAIN, select=["FLOW001"], flow=True)
    assert rules_of(findings) == ["FLOW001"]
    assert "crunch_task" in findings[0].message
    assert "_jitter" in findings[0].message  # chain is printed


def test_flow001_quiet_when_rng_is_seeded():
    tree = dict(_RNG_CHAIN)
    tree["repro.core.tasks"] = """
    import numpy as np

    def _jitter(seed):
        return np.random.default_rng(seed)

    def crunch_task(x, seed):
        return _jitter(seed).integers(0, x)
    """
    assert lint_tree(tree, select=["FLOW001"], flow=True) == []


def test_flow001_quiet_when_effect_stays_outside_worker_code():
    tree = {
        "repro.core.tasks": """
        def crunch_task(x):
            return x * 2
        """,
        "repro.core.driver": """
        import time
        from repro.core.tasks import crunch_task

        def run(engine):
            handle = engine.submit(crunch_task, 8)
            return handle, time.time()
        """,
    }
    # run() reads the clock but is never submitted: not worker code.
    assert lint_tree(tree, select=["FLOW001"], flow=True) == []


def test_flow001_fires_on_clock_in_worker_module():
    tree = {
        "repro.chain.worker": """
        import time

        def stage(x):
            return x, time.time()
        """,
    }
    findings = lint_tree(tree, select=["FLOW001"], flow=True)
    assert rules_of(findings) == ["FLOW001"]
    assert "wall-clock" in findings[0].message


def test_flow001_suppression_at_intrinsic_site_covers_all_callers():
    tree = {
        "repro.core.tasks": """
        import time

        def _stamp():
            return time.time()  # repro: allow[DET003] wall time is payload metadata

        def a_task(x):
            return _stamp(), x

        def b_task(x):
            return _stamp(), -x
        """,
    }
    # One reasoned suppression at the intrinsic site sanctions the
    # effect for every transitive caller — no per-caller comments.
    assert lint_tree(tree, select=["FLOW001"], flow=True) == []


def test_flow001_suppressible_at_the_task_definition():
    tree = {
        "repro.core.tasks": """
        import time

        def probe_task(x):  # repro: allow[FLOW001] timing probe, output unused
            return time.time(), x
        """,
    }
    assert lint_tree(tree, select=["FLOW001"], flow=True) == []


# ---------------------------------------------------------------------------
# FLOW002
# ---------------------------------------------------------------------------


def test_flow002_fires_on_mutation_after_submit():
    tree = {
        "repro.core.driver": """
        def task(x):
            return x

        def run(engine, payload):
            handle = engine.submit(task, payload)
            payload["late"] = 1
            return handle
        """,
    }
    findings = lint_tree(tree, select=["FLOW002"], flow=True)
    assert rules_of(findings) == ["FLOW002"]
    assert "payload" in findings[0].message


def test_flow002_fires_on_mutating_method_call():
    tree = {
        "repro.core.driver": """
        def task(x):
            return x

        def run(engine, batch):
            handle = engine.dispatch(task, batch)
            batch.append(9)
            return handle
        """,
    }
    findings = lint_tree(tree, select=["FLOW002"], flow=True)
    assert rules_of(findings) == ["FLOW002"]


def test_flow002_quiet_when_mutation_precedes_submit():
    tree = {
        "repro.core.driver": """
        def task(x):
            return x

        def run(engine, payload):
            payload["early"] = 1
            return engine.submit(task, payload)
        """,
    }
    assert lint_tree(tree, select=["FLOW002"], flow=True) == []


def test_flow002_quiet_when_name_is_rebound_first():
    tree = {
        "repro.core.driver": """
        def task(x):
            return x

        def run(engine, payload):
            handle = engine.submit(task, payload)
            payload = {}
            payload["fresh"] = 1
            return handle
        """,
    }
    # Rebinding makes a new object; mutating it cannot race the worker.
    assert lint_tree(tree, select=["FLOW002"], flow=True) == []


# ---------------------------------------------------------------------------
# FLOW003
# ---------------------------------------------------------------------------


def test_flow003_fires_on_lambda_argument_to_submit():
    tree = {
        "repro.core.driver": """
        def task(x, fn):
            return fn(x)

        def run(engine):
            return engine.submit(task, 3, lambda v: v + 1)
        """,
    }
    findings = lint_tree(tree, select=["FLOW003"], flow=True)
    assert rules_of(findings) == ["FLOW003"]
    assert "lambda" in findings[0].message


def test_flow003_fires_transitively_through_a_helper():
    tree = {
        "repro.core.driver": """
        def _dispatch(engine, fn, arg):
            return engine.submit(fn, arg)

        def task(x):
            return x

        def run(engine):
            return _dispatch(engine, task, lambda: 3)
        """,
    }
    findings = lint_tree(tree, select=["FLOW003"], flow=True)
    assert rules_of(findings) == ["FLOW003"]
    assert "_dispatch" in findings[0].message


def test_flow003_fires_on_open_handle_through_chain():
    tree = {
        "repro.core.driver": """
        def _dispatch(engine, fn, arg):
            return engine.submit(fn, arg)

        def task(x):
            return x

        def run(engine, path):
            fh = open(path)
            return _dispatch(engine, task, fh)
        """,
    }
    findings = lint_tree(tree, select=["FLOW003"], flow=True)
    assert rules_of(findings) == ["FLOW003"]
    assert "file handle" in findings[0].message


def test_flow003_quiet_on_plain_data_through_chain():
    tree = {
        "repro.core.driver": """
        def _dispatch(engine, fn, arg):
            return engine.submit(fn, arg)

        def task(x):
            return x

        def run(engine):
            return _dispatch(engine, task, [1, 2, 3])
        """,
    }
    assert lint_tree(tree, select=["FLOW003"], flow=True) == []


def test_flow003_quiet_when_helper_never_submits():
    tree = {
        "repro.core.driver": """
        def _apply(fn, arg):
            return fn(arg)

        def run():
            return _apply(lambda v: v + 1, 3)
        """,
    }
    # Lambdas are fine in-process; only the pool boundary pickles.
    assert lint_tree(tree, select=["FLOW003"], flow=True) == []


def test_flow_rules_do_not_run_without_flow_flag():
    findings = lint_tree(_RNG_CHAIN, select=["FLOW001"])
    assert findings == []
