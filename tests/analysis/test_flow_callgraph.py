"""Call-graph construction: resolution through aliases, methods,
nested defs, package re-exports, and the conservative dispatch union."""

from .helpers import flow_context


def test_plain_module_level_call_resolves():
    ctx = flow_context(
        {
            "repro.seed.mod": """
            def helper():
                return 1

            def top():
                return helper()
            """,
        }
    )
    targets = [t for t, _ in ctx.graph.callees("repro.seed.mod.top")]
    assert targets == ["repro.seed.mod.helper"]


def test_aliased_import_resolves_across_modules():
    ctx = flow_context(
        {
            "repro.seed.producer": """
            def make():
                return 7
            """,
            "repro.seed.consumer": """
            from repro.seed.producer import make as build

            def run():
                return build()
            """,
        }
    )
    targets = [
        t for t, _ in ctx.graph.callees("repro.seed.consumer.run")
    ]
    assert targets == ["repro.seed.producer.make"]


def test_module_alias_attribute_call_resolves():
    ctx = flow_context(
        {
            "repro.seed.producer": """
            def make():
                return 7
            """,
            "repro.seed.consumer": """
            import repro.seed.producer as prod

            def run():
                return prod.make()
            """,
        }
    )
    targets = [
        t for t, _ in ctx.graph.callees("repro.seed.consumer.run")
    ]
    assert targets == ["repro.seed.producer.make"]


def test_init_reexport_is_followed():
    ctx = flow_context(
        {
            "repro.seed.__init__": """
            from .dsoft import seed_hits
            """,
            "repro.seed.dsoft": """
            def seed_hits():
                return []
            """,
            "repro.align.caller": """
            from repro.seed import seed_hits

            def run():
                return seed_hits()
            """,
        }
    )
    targets = [t for t, _ in ctx.graph.callees("repro.align.caller.run")]
    assert targets == ["repro.seed.dsoft.seed_hits"]


def test_self_method_call_resolves_within_class():
    ctx = flow_context(
        {
            "repro.core.cls": """
            class Engine:
                def step(self):
                    return self.helper()

                def helper(self):
                    return 1
            """,
        }
    )
    targets = [
        t for t, _ in ctx.graph.callees("repro.core.cls.Engine.step")
    ]
    assert targets == ["repro.core.cls.Engine.helper"]


def test_unknown_receiver_unions_all_methods_of_that_name():
    ctx = flow_context(
        {
            "repro.core.a": """
            class A:
                def run(self):
                    return 1
            """,
            "repro.core.b": """
            class B:
                def run(self):
                    return 2
            """,
            "repro.core.use": """
            def call(obj):
                return obj.run()
            """,
        }
    )
    targets = sorted(
        t for t, _ in ctx.graph.callees("repro.core.use.call")
    )
    assert targets == ["repro.core.a.A.run", "repro.core.b.B.run"]


def test_nested_def_gets_locals_qualname_and_resolves():
    ctx = flow_context(
        {
            "repro.core.nest": """
            def outer():
                def inner():
                    return 3
                return inner()
            """,
        }
    )
    assert (
        "repro.core.nest.outer.<locals>.inner" in ctx.graph.functions
    )
    targets = [t for t, _ in ctx.graph.callees("repro.core.nest.outer")]
    assert targets == ["repro.core.nest.outer.<locals>.inner"]


def test_external_call_is_recorded_as_external_edge():
    ctx = flow_context(
        {
            "repro.core.ext": """
            import time

            def now():
                return time.time()
            """,
        }
    )
    node = ctx.graph.functions["repro.core.ext.now"]
    externals = [s.external for s in node.calls if s.external]
    assert externals == ["time.time"]


def test_nested_scope_shadows_module_level_def():
    ctx = flow_context(
        {
            "repro.core.shadow": """
            def helper():
                return "module"

            def outer():
                def helper():
                    return "local"
                return helper()
            """,
        }
    )
    targets = [
        t for t, _ in ctx.graph.callees("repro.core.shadow.outer")
    ]
    assert targets == ["repro.core.shadow.outer.<locals>.helper"]
