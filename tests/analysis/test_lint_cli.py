"""The three equivalent lint entry points and their exit codes."""

import json
from pathlib import Path

from repro.analysis.app import main as analysis_main
from repro.cli import main as cli_main

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_module_entry_point_clean_tree(capsys):
    code = analysis_main([str(SRC)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_repro_lint_subcommand(capsys):
    code = cli_main(["lint", str(SRC)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_json_format(capsys):
    code = analysis_main([str(SRC), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True


def test_list_rules(capsys):
    code = analysis_main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in (
        "DET001", "DET004", "LAY001", "LAY002", "KER001", "KER005",
        "PAR001", "PAR002", "SUP001",
    ):
        assert rule_id in out


def test_dirty_file_fails_with_exit_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
    code = analysis_main([str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET002" in out


def test_missing_path_fails_with_exit_two(tmp_path, capsys):
    code = analysis_main([str(tmp_path / "nope")])
    capsys.readouterr()
    assert code == 2


def test_select_filters_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "x = np.random.rand(3)\n"
        "def f(a=[]):\n"
        "    return a\n"
    )
    code = analysis_main([str(bad), "--select", "KER003"])
    out = capsys.readouterr().out
    assert code == 1
    assert "KER003" in out
    assert "DET002" not in out


def test_syntax_error_reports_parse_finding(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    code = analysis_main([str(broken)])
    out = capsys.readouterr().out
    assert code == 1
    assert "PARSE" in out


def test_flow_flag_clean_tree(capsys):
    code = analysis_main([str(SRC), "--flow"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_graph_export_json_and_dot(tmp_path, capsys):
    json_out = tmp_path / "graph.json"
    code = analysis_main([str(SRC), "--graph", str(json_out)])
    capsys.readouterr()
    assert code == 0
    payload = json.loads(json_out.read_text())
    assert payload["version"] == 1
    assert payload["counts"]["functions"] > 100
    assert payload["counts"]["edges"] > payload["counts"]["functions"]

    dot_out = tmp_path / "graph.dot"
    code = analysis_main([str(SRC), "--graph", str(dot_out)])
    capsys.readouterr()
    assert code == 0
    dot = dot_out.read_text()
    assert dot.startswith("digraph callgraph {")
    assert dot.rstrip().endswith("}")


def test_baseline_flag_gates_only_new_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
    baseline = tmp_path / "findings.json"

    code = analysis_main([str(bad), "--format", "json"])
    baseline.write_text(capsys.readouterr().out)
    assert code == 1

    code = analysis_main([str(bad), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 baselined" in out

    bad.write_text(
        "import numpy as np\nimport time\n"
        "x = np.random.rand(3)\ny = time.time()\n"
    )
    code = analysis_main([str(bad), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET003" in out
    assert "DET002" not in out


def test_missing_baseline_fails_with_exit_two(tmp_path, capsys):
    code = analysis_main(
        [str(SRC), "--baseline", str(tmp_path / "nope.json")]
    )
    capsys.readouterr()
    assert code == 2


def test_list_rules_includes_flow_rules(capsys):
    code = analysis_main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("FLOW001", "FLOW002", "FLOW003", "KER006"):
        assert rule_id in out
