"""Resource sampling: GC-pause tracking, point samples, the sampler."""

import gc

import pytest

from repro.obs import GcPauseTracker, ResourceSampler, Tracer, sample_resources
from repro.obs.resource import ResourceSample


class TestGcPauseTracker:
    def test_records_collection_pauses(self):
        with GcPauseTracker() as tracker:
            gc.collect()
            gc.collect()
        assert tracker.pause_count >= 2
        assert tracker.pause_seconds >= 0.0
        assert all(p >= 0.0 for p in tracker.pauses)

    def test_remove_stops_recording(self):
        tracker = GcPauseTracker().install()
        gc.collect()
        tracker.remove()
        seen = tracker.pause_count
        gc.collect()
        assert tracker.pause_count == seen

    def test_install_is_idempotent(self):
        tracker = GcPauseTracker()
        before = len(gc.callbacks)
        tracker.install()
        tracker.install()
        assert len(gc.callbacks) == before + 1
        tracker.remove()
        tracker.remove()
        assert len(gc.callbacks) == before


class TestSampleResources:
    def test_sample_has_plausible_values(self):
        sample = sample_resources()
        assert sample.rss_bytes > 0  # this test process surely uses memory
        assert sample.cpu_seconds > 0.0
        assert sample.gc_pauses == 0  # no tracker attached

    def test_sample_reads_tracker_and_epoch(self):
        tracker = GcPauseTracker().install()
        try:
            gc.collect()
            sample = sample_resources(
                tracker, clock=lambda: 12.0, epoch=10.0
            )
        finally:
            tracker.remove()
        assert sample.elapsed == pytest.approx(2.0)
        assert sample.gc_pauses == tracker.pause_count
        assert sample.gc_pause_seconds == pytest.approx(
            tracker.pause_seconds
        )

    def test_as_dict_is_wire_ready(self):
        payload = ResourceSample(1.0, 2048, 0.5, 3, 0.01).as_dict()
        assert payload == {
            "elapsed": 1.0,
            "rss_bytes": 2048,
            "cpu_seconds": 0.5,
            "gc_pauses": 3,
            "gc_pause_seconds": 0.01,
        }


class TestResourceSampler:
    def test_stop_always_records_a_closing_sample(self):
        sampler = ResourceSampler(interval=60.0)  # never fires on its own
        sampler.start()
        sampler.stop()
        assert len(sampler.samples) >= 1
        assert sampler.summary()["max_rss_bytes"] > 0

    def test_emit_callback_receives_each_sample(self):
        emitted = []
        sampler = ResourceSampler(interval=60.0, emit=emitted.append)
        sampler.sample_once()
        sampler.sample_once()
        assert len(emitted) == 2
        assert all(isinstance(s, ResourceSample) for s in emitted)

    def test_attach_to_summarises_onto_span(self):
        tracer = Tracer()
        with tracer.span("run") as span:
            with ResourceSampler(interval=60.0) as sampler:
                pass
            sampler.attach_to(span)
        resource = span.attrs["resource"]
        assert resource["samples"] == len(sampler.samples)
        assert resource["max_rss_bytes"] > 0
        assert set(resource) == {
            "samples",
            "max_rss_bytes",
            "cpu_seconds",
            "gc_pauses",
            "gc_pause_seconds",
        }
