"""Run-report serialization, Chrome-trace conversion and rendering."""

import json

import numpy as np
import pytest

from repro.core import DarwinWGA
from repro.genome import make_species_pair
from repro.obs import (
    Tracer,
    load_run_report,
    render_run,
    render_tree,
    run_report,
    spans_from_report,
    to_chrome_trace,
    write_chrome_trace,
    write_run_report,
)


@pytest.fixture
def traced_run():
    """A small traced Darwin-WGA run shared by export tests."""
    pair = make_species_pair(
        4000, 0.3, np.random.default_rng(7), alignable_fraction=0.5
    )
    tracer = Tracer()
    result = DarwinWGA(tracer=tracer).align(
        pair.target.genome, pair.query.genome
    )
    return tracer, result


class TestRunReport:
    def test_report_is_json_serializable(self, traced_run):
        tracer, result = traced_run
        report = run_report(tracer, result=result, meta={"k": "v"})
        encoded = json.dumps(report)
        assert json.loads(encoded) == report

    def test_workload_counters_match_span_counters(self, traced_run):
        """The acceptance check: trace counters == Workload counters."""
        tracer, result = traced_run
        report = run_report(tracer, result=result)
        root = report["spans"][0]
        workload = report["workload"]
        for key in (
            "seed_hits",
            "filter_tiles",
            "filter_cells",
            "extension_tiles",
            "extension_cells",
            "anchors",
            "absorbed_anchors",
        ):
            assert root["counters"][key] == workload[key], key
        assert workload["seed_hits"] == result.workload.seed_hits
        assert workload["filter_cells"] == result.workload.filter_cells
        assert (
            workload["extension_cells"]
            == result.workload.extension_cells
        )

    def test_stage_cells_match_workload(self, traced_run):
        tracer, result = traced_run
        report = run_report(tracer, result=result)
        stages = report["stages"]
        assert (
            stages["gapped_filter"]["counters"]["filter_cells"]
            == result.workload.filter_cells
        )
        assert (
            stages["extend"]["counters"].get("extension_cells", 0)
            == result.workload.extension_cells
        )
        assert (
            stages["seed"]["counters"]["seed_hits"]
            == result.workload.seed_hits
        )

    def test_write_and_load_round_trip(self, traced_run, tmp_path):
        tracer, result = traced_run
        path = tmp_path / "run.json"
        written = write_run_report(path, tracer, result=result)
        loaded = load_run_report(path)
        assert loaded == written

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "spans": []}))
        with pytest.raises(ValueError, match="version"):
            load_run_report(path)

    def test_spans_from_report_round_trip(self, traced_run):
        tracer, result = traced_run
        report = run_report(tracer, result=result)
        rebuilt = spans_from_report(
            json.loads(json.dumps(report))
        )
        original = list(tracer.walk())
        recovered = [s for root in rebuilt for s in root.walk()]
        assert [s.name for s in recovered] == [
            s.name for s in original
        ]
        assert [s.counters for s in recovered] == [
            s.counters for s in original
        ]
        for orig, back in zip(original, recovered):
            assert back.duration == pytest.approx(
                orig.duration, abs=1e-9
            )


class TestChromeTrace:
    def test_event_per_span(self, traced_run):
        tracer, _ = traced_run
        trace = to_chrome_trace(tracer)
        assert len(trace["traceEvents"]) == len(list(tracer.walk()))

    def test_events_are_complete_events_in_microseconds(
        self, traced_run
    ):
        tracer, _ = traced_run
        report = run_report(tracer)
        trace = to_chrome_trace(report)
        root_event = trace["traceEvents"][0]
        assert root_event["ph"] == "X"
        root_span = report["spans"][0]
        assert root_event["ts"] == pytest.approx(
            root_span["start"] * 1e6, abs=0.01
        )
        assert root_event["dur"] == pytest.approx(
            root_span["duration"] * 1e6, abs=0.01
        )

    def test_children_nest_within_parent_window(self, traced_run):
        tracer, _ = traced_run
        trace = to_chrome_trace(tracer)
        events = trace["traceEvents"]
        root = events[0]
        for event in events[1:]:
            assert event["ts"] >= root["ts"] - 0.01
            assert (
                event["ts"] + event["dur"]
                <= root["ts"] + root["dur"] + 0.01
            )

    def test_counters_propagate_to_args(self, traced_run):
        tracer, _ = traced_run
        trace = to_chrome_trace(tracer)
        root = trace["traceEvents"][0]
        assert "seed_hits" in root["args"]
        assert root["args"]["aligner"] == "darwin"

    def test_write_chrome_trace(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "chrome.json"
        write_chrome_trace(path, tracer)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestRendering:
    def test_render_tree_mentions_spans_and_counters(self, traced_run):
        tracer, _ = traced_run
        text = render_tree(tracer)
        assert "align" in text
        assert "seed_hits" in text
        assert "ms" in text

    def test_render_tree_truncates(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(50):
                with tracer.span("leaf"):
                    pass
        text = render_tree(tracer, max_spans=10)
        assert "more spans" in text
        assert len(text.splitlines()) == 11

    def test_render_run_extends_workload_summary(self, traced_run):
        tracer, result = traced_run
        report = run_report(tracer, result=result)
        text = render_run(report)
        # the workload block, the stage table and the tree all present
        assert "seed_hits" in text
        assert "stage" in text
        assert "align" in text
        assert "funnel" in text
