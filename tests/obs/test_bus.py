"""Unit tests for the telemetry bus: publisher, routing, accounting.

These tests swap the bus's ``multiprocessing.Queue`` for a plain
``queue.Queue``: same interface, but synchronous (an mp.Queue flushes
through a feeder thread, so put→get_nowait races) and boundable to tiny
sizes for deterministic overflow tests.  The real cross-process path is
covered by ``tests/parallel/test_telemetry_bus.py``.
"""

import queue

import pytest

from repro.obs import (
    BusPublisher,
    MetricRegistry,
    TelemetryBus,
    Tracer,
    serialize_spans,
)
from repro.obs.bus import (
    BusEndpoint,
    clear_publisher,
    current_publisher,
    install_publisher,
)


def make_bus(maxsize=64):
    bus = TelemetryBus()
    bus._queue = queue.Queue(maxsize)
    return bus


def make_publisher(bus, pid=1001):
    return BusPublisher(bus._queue, pid=pid)


class TestPublisher:
    def test_sequence_numbers_are_contiguous(self):
        bus = make_bus()
        publisher = make_publisher(bus)
        for _ in range(5):
            assert publisher.emit_counter("dispatched")
        assert publisher.sent == 5
        seqs = [bus._queue.get_nowait()[1] for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_full_queue_drops_without_blocking(self):
        bus = make_bus(maxsize=2)
        publisher = make_publisher(bus)
        assert publisher.emit_counter("a")
        assert publisher.emit_counter("b")
        assert not publisher.emit_counter("c")  # full: dropped locally
        assert publisher.sent == 2
        assert publisher.lost == 1
        # A drop does not consume a sequence number: the next delivered
        # event continues the contiguous stream.
        bus._queue.get_nowait()
        bus._queue.get_nowait()
        assert publisher.emit_counter("d")
        assert bus._queue.get_nowait()[1] == 2

    def test_ack_reports_delivery_state(self):
        bus = make_bus(maxsize=1)
        publisher = make_publisher(bus, pid=42)
        publisher.emit_counter("a")
        publisher.emit_counter("b")  # dropped
        ack = publisher.ack(busy=1.5)
        assert ack == {"pid": 42, "sent": 1, "lost": 1, "busy": 1.5}

    def test_install_and_clear_module_publisher(self):
        bus = make_bus()
        assert current_publisher() is None
        installed = install_publisher(BusEndpoint(bus._queue))
        try:
            assert current_publisher() is installed
        finally:
            clear_publisher()
        assert current_publisher() is None


class TestRouting:
    def test_counters_and_histograms_merge_into_registry(self):
        bus = make_bus()
        registry = MetricRegistry()
        bus.attach(registry=registry)
        publisher = make_publisher(bus)
        publisher.emit_counter("tasks", 3)
        publisher.emit_histogram("tile_seconds", [0.1, 0.2])
        assert bus.poll() == 2
        assert registry.counter("tasks").value == 3
        assert registry.histogram("tile_seconds").count == 2

    def test_funnels_accumulate_globally_and_per_worker(self):
        bus = make_bus()
        first = make_publisher(bus, pid=1)
        second = make_publisher(bus, pid=2)
        first.emit_funnel("t1:q1", {"seed_hits": 10, "anchors": 2})
        second.emit_funnel("t2:q1", {"seed_hits": 5})
        first.emit_funnel("t1:q2", {"seed_hits": 1})
        bus.poll()
        summary = bus.summary()
        assert summary["funnel"] == {"seed_hits": 16, "anchors": 2}
        workers = summary["worker_funnels"]
        assert workers["1"] == {"seed_hits": 11, "anchors": 2}
        assert workers["2"] == {"seed_hits": 5}
        # The global funnel is exactly the sum of the per-worker ones.
        merged = {}
        for counters in workers.values():
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        assert merged == summary["funnel"]

    def test_resource_samples_land_in_worker_histograms(self):
        bus = make_bus()
        registry = MetricRegistry()
        bus.attach(registry=registry)
        publisher = make_publisher(bus)
        publisher.emit_resource(
            {"rss_bytes": 1 << 20, "gc_pause_seconds": 0.001}
        )
        bus.poll()
        assert registry.histogram("worker_rss_bytes").max == 1 << 20
        assert registry.histogram("worker_gc_pause_seconds").count == 1

    def test_spans_graft_with_unit_base_and_worker_tag(self):
        clock = iter([float(i) for i in range(100)])
        parent = Tracer(clock=lambda: next(clock))
        worker = Tracer(clock=lambda: 0.0)
        with worker.span("tile"):
            pass
        bus = make_bus()
        bus.attach(tracer=parent)
        bus.register_unit("t1:q1", base=7.0)
        publisher = make_publisher(bus, pid=9)
        publisher.emit_spans(serialize_spans(worker), unit="t1:q1")
        with parent.span("align"):
            bus.poll()
        grafted = parent.roots[0].children[0]
        assert grafted.name == "tile"
        assert grafted.attrs["unit"] == "t1:q1"
        assert grafted.attrs["worker"] == 9
        assert grafted.start == pytest.approx(7.0)


class TestAccounting:
    def test_drain_detects_dropped_in_transit_events(self):
        bus = make_bus()
        publisher = make_publisher(bus, pid=5)
        publisher.emit_counter("a")
        publisher.emit_counter("b")
        publisher.emit_counter("c")
        bus._queue.get_nowait()  # one event vanishes in transit
        bus.record_ack(publisher.ack())
        ticks = iter([0.0, 0.1, 0.2, 0.3])
        missing = bus.drain(timeout=0.25, clock=lambda: next(ticks))
        assert missing == 1
        summary = bus.summary()
        assert summary["dropped_events"] == 1
        assert summary["lost_events"] == 0
        # The in-transit loss shows up as a sequence gap too.
        assert summary["gap_events"] == 1

    def test_drain_returns_zero_when_everything_arrived(self):
        bus = make_bus()
        publisher = make_publisher(bus)
        for _ in range(4):
            publisher.emit_counter("x")
        bus.record_ack(publisher.ack())
        assert bus.drain(timeout=0.1) == 0
        summary = bus.summary()
        assert summary["events"] == 4
        assert summary["dropped_events"] == 0
        assert summary["gap_events"] == 0

    def test_acks_keep_max_sent_and_sum_busy(self):
        bus = make_bus()
        bus.record_ack({"pid": 3, "sent": 2, "lost": 0, "busy": 1.0})
        bus.record_ack({"pid": 3, "sent": 5, "lost": 1, "busy": 0.5})
        bus.record_ack(None)  # serial-fallback tasks have no ack
        assert bus.busy_seconds() == {3: 1.5}
        summary = bus.summary()
        assert summary["lost_events"] == 1
        assert summary["workers"] == 1

    def test_idle_tail_sums_time_after_last_completion(self):
        bus = make_bus()
        bus.record_ack({"pid": 1, "sent": 0, "lost": 0}, done_at=4.0)
        bus.record_ack({"pid": 2, "sent": 0, "lost": 0}, done_at=9.0)
        assert bus.idle_tail_seconds(10.0) == pytest.approx(7.0)
        assert bus.idle_tail_seconds(3.0) == 0.0
