"""Determinism and tracing-neutrality regression tests.

Two runs from the same RNG seed must agree on every workload counter
and every alignment score (trace timestamps excluded), and running
with a real tracer must not change the computation relative to the
default NullTracer path.
"""

import numpy as np
import pytest

from repro.core import DarwinWGA, Workload
from repro.genome import make_species_pair
from repro.lastz import LastzAligner
from repro.obs import Tracer

WORKLOAD_COUNTERS = (
    "seed_hits",
    "filter_tiles",
    "filter_cells",
    "extension_tiles",
    "extension_cells",
    "anchors",
    "absorbed_anchors",
)


def _pair(seed=11):
    return make_species_pair(
        5000,
        0.5,
        np.random.default_rng(seed),
        alignable_fraction=0.45,
    )


def _counters(workload: Workload):
    return {name: getattr(workload, name) for name in WORKLOAD_COUNTERS}


class TestDeterminism:
    def test_same_seed_same_counters_and_scores(self):
        first_pair = _pair()
        second_pair = _pair()
        first = DarwinWGA().align(
            first_pair.target.genome, first_pair.query.genome
        )
        second = DarwinWGA().align(
            second_pair.target.genome, second_pair.query.genome
        )
        assert _counters(first.workload) == _counters(second.workload)
        assert [a.score for a in first.alignments] == [
            a.score for a in second.alignments
        ]
        assert [str(a.cigar) for a in first.alignments] == [
            str(a.cigar) for a in second.alignments
        ]

    def test_different_seed_changes_something(self):
        pair_a = _pair(1)
        pair_b = _pair(2)
        a = DarwinWGA().align(pair_a.target.genome, pair_a.query.genome)
        b = DarwinWGA().align(pair_b.target.genome, pair_b.query.genome)
        assert _counters(a.workload) != _counters(b.workload)

    @pytest.mark.parametrize("aligner_class", [DarwinWGA, LastzAligner])
    def test_tracing_does_not_change_results(self, aligner_class):
        pair = _pair()
        target, query = pair.target.genome, pair.query.genome
        plain = aligner_class().align(target, query)
        traced = aligner_class(tracer=Tracer()).align(target, query)
        assert _counters(plain.workload) == _counters(traced.workload)
        assert [a.score for a in plain.alignments] == [
            a.score for a in traced.alignments
        ]

    def test_trace_counters_deterministic_across_runs(self):
        """Span counters (not timestamps) repeat run to run."""

        def run():
            pair = _pair()
            tracer = Tracer()
            DarwinWGA(tracer=tracer).align(
                pair.target.genome, pair.query.genome
            )
            return [(s.name, s.counters) for s in tracer.walk()]

        assert run() == run()
