"""StreamStats under a fake clock: exact integrals, no wall time.

The streamed scheduler's perf claims (occupancy, idle tail) rest on
this accounting, so the arithmetic is pinned with a deterministic
clock — every scenario computes the expected slot-second integrals by
hand.
"""

from repro.obs.occupancy import StreamStats


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(slots=2):
    clock = FakeClock()
    return StreamStats(slots, clock=clock), clock


class TestIntegral:
    def test_no_events_is_all_zero(self):
        stats, _ = make()
        summary = stats.summary()
        assert summary["occupancy"] == 0.0
        assert summary["idle_tail_seconds"] == 0.0
        assert summary["window_seconds"] == 0.0

    def test_full_occupancy_single_slot(self):
        stats, clock = make(slots=1)
        stats.dispatched()
        clock.advance(4.0)
        stats.collected()
        stats.close()
        assert stats.occupancy() == 1.0
        assert stats.summary()["busy_slot_seconds"] == 4.0

    def test_depth_is_clamped_to_slots(self):
        # 3 units in flight on 2 slots for 2s: busy integral is
        # 2 slots x 2s, not 3 x 2.
        stats, clock = make(slots=2)
        stats.dispatched(3)
        clock.advance(2.0)
        stats.collected(3)
        stats.close()
        assert stats.summary()["busy_slot_seconds"] == 4.0
        assert stats.peak_in_flight == 3

    def test_partial_occupancy(self):
        # One of two slots busy for the whole 5s window.
        stats, clock = make(slots=2)
        stats.dispatched()
        clock.advance(5.0)
        stats.collected()
        stats.close()
        assert stats.occupancy() == 0.5


class TestIdleTail:
    def test_barrier_drain_is_the_tail(self):
        # Two units dispatched together on two slots; one finishes at
        # t=1, the other at t=3: the second slot idles 2 slot-s after
        # the last dispatch.
        stats, clock = make(slots=2)
        stats.dispatched(2)
        clock.advance(1.0)
        stats.collected()
        clock.advance(2.0)
        stats.collected()
        stats.close()
        assert stats.idle_tail_seconds() == 2.0

    def test_trailing_serial_stage_counts_via_close(self):
        # Work drains at t=1, but the schedule section ends at t=4
        # (e.g. a serial seed+filter ran after the drain): 2 slots x 3s
        # of tail idleness on top of nothing.
        stats, clock = make(slots=2)
        stats.dispatched(2)
        clock.advance(1.0)
        stats.collected(2)
        clock.advance(3.0)
        stats.close()
        assert stats.idle_tail_seconds() == 6.0

    def test_mid_stream_stall_is_not_in_the_tail(self):
        # Deferral gap in the middle (t=1..3, nothing in flight), then
        # another dispatch that finishes exactly at close: tail is 0,
        # the gap shows up in occupancy instead.
        stats, clock = make(slots=1)
        stats.dispatched()
        clock.advance(1.0)
        stats.collected()
        clock.advance(2.0)
        stats.dispatched()
        clock.advance(1.0)
        stats.collected()
        stats.close()
        assert stats.idle_tail_seconds() == 0.0
        assert stats.occupancy() == 0.5  # 2 busy / 4 window

    def test_tail_without_close_ends_at_last_collect(self):
        stats, clock = make(slots=2)
        stats.dispatched(2)
        clock.advance(1.0)
        stats.collected()
        clock.advance(1.0)
        stats.collected()
        # No close(): window ends at the last collect (t=2); slot 2
        # idled for the second second.
        assert stats.idle_tail_seconds() == 1.0

    def test_streamed_schedule_has_no_tail(self):
        # Dispatches keep arriving until the end (each collect is
        # followed by a refill), so both slots stay busy through the
        # close: no tail, full occupancy.
        stats, clock = make(slots=2)
        stats.dispatched(2)
        clock.advance(1.0)
        stats.collected()
        stats.dispatched()
        clock.advance(1.0)
        stats.collected(2)
        stats.close()
        assert stats.idle_tail_seconds() == 0.0
        assert stats.occupancy() == 1.0


class TestCounters:
    def test_stall_and_producer_counters(self):
        stats, _ = make()
        stats.stalled()
        stats.stalled()
        stats.produced()
        assert stats.backpressure_stalls == 2
        assert stats.producer_steps == 1

    def test_dispatch_collect_bookkeeping(self):
        stats, _ = make()
        assert stats.dispatched(2) == 2
        assert stats.collected() == 1
        assert stats.in_flight == 1
        summary = stats.summary()
        assert summary["dispatched_tasks"] == 2
        assert summary["collected_tasks"] == 1
