"""Span tracer tests: nesting, timing monotonicity, null fast path."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.tracer import _NullSpan


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_children_nest_under_open_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert root.children[0].children[0].name == "grandchild"

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_walk_visits_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "c"]

    def test_span_open_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        # The span still closed and popped cleanly.
        assert tracer.current() is None
        assert tracer.roots[0].closed


class TestTiming:
    def test_monotonic_timestamps(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start < inner.start
        assert inner.start < inner.end
        assert inner.end < outer.end
        assert outer.duration > inner.duration

    def test_duration_zero_while_open(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("open")
        span.__enter__()
        assert span.duration == 0.0
        assert not span.closed
        span.__exit__(None, None, None)
        assert span.closed
        assert span.duration > 0.0

    def test_child_durations_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            for _ in range(3):
                with tracer.span("child"):
                    pass
        total = sum(c.duration for c in parent.children)
        assert total <= parent.duration

    def test_real_clock_positive_durations(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            sum(range(1000))
        assert span.duration >= 0.0
        assert span.start >= tracer.epoch


class TestCountersAndAttrs:
    def test_inc_accumulates(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.inc("cells", 10).inc("cells", 5).inc("tiles")
        assert span.counters == {"cells": 15, "tiles": 1}

    def test_tracer_inc_targets_innermost(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.inc("hits", 3)
        assert inner.counters == {"hits": 3}
        assert outer.counters == {}

    def test_tracer_inc_outside_span_is_noop(self):
        tracer = Tracer()
        tracer.inc("hits", 1)
        assert tracer.roots == []

    def test_attrs_from_creation_and_set(self):
        tracer = Tracer()
        with tracer.span("s", stage="seed") as span:
            span.set(score=42)
        assert span.attrs == {"stage": "seed", "score": 42}


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a", x=1) as span:
            span.inc("cells", 100).set(y=2)
            with tracer.span("b"):
                pass
        assert list(tracer.walk()) == []
        assert tracer.roots == []
        assert tracer.current() is None

    def test_shared_singleton_span(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b", attr=1)
        assert a is b
        assert isinstance(a, _NullSpan)

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_null_span_protocol(self):
        with NULL_TRACER.span("x") as span:
            assert span.inc("c") is span
            assert span.set(a=1) is span
            assert span.duration == 0.0
        assert list(span.walk()) == []

    def test_null_overhead_is_small(self):
        """The disabled path must stay within a small multiple of a
        bare function call (guards the <3% end-to-end budget)."""
        import timeit

        tracer = NULL_TRACER

        def traced():
            with tracer.span("s"):
                pass

        def bare():
            pass

        traced_t = min(timeit.repeat(traced, number=20000, repeat=3))
        bare_t = min(timeit.repeat(bare, number=20000, repeat=3))
        # Null spans do no clock reads or allocation; ~an order of
        # magnitude of a no-op call is ample slack for CI jitter.
        assert traced_t < bare_t * 40
