"""Metric primitive and derived-metric tests."""

import pytest

from repro.core import Workload
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Tracer,
    funnel_metrics,
    stage_summary,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter("seeds")
        c.inc()
        c.inc(9)
        assert c.value == 10
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("util")
        g.set(0.5)
        g.add(0.25)
        assert g.value == pytest.approx(0.75)
        g.set(0.1)
        assert g.value == pytest.approx(0.1)

    def test_histogram_summary(self):
        h = Histogram("tile_cells")
        for v in [1, 2, 3, 4, 100]:
            h.observe(v)
        assert h.count == 5
        assert h.min == 1
        assert h.max == 100
        assert h.mean == pytest.approx(22.0)
        assert h.quantile(0.5) == 3
        summary = h.summary()
        assert summary["count"] == 5
        assert summary["p95"] == 100

    def test_histogram_empty(self):
        h = Histogram("empty")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_histogram_quantile_bounds(self):
        h = Histogram("h")
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_registry_creates_and_caches(self):
        reg = MetricRegistry()
        c = reg.counter("seeds")
        assert reg.counter("seeds") is c
        reg.gauge("util").set(0.5)
        reg.histogram("cells").observe(3)
        snapshot = reg.as_dict()
        assert snapshot["seeds"] == 0
        assert snapshot["util"] == 0.5
        assert snapshot["cells"]["count"] == 1

    def test_registry_type_conflict(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")


class TestFunnel:
    def test_ratios(self):
        workload = Workload(
            seed_hits=1000,
            filter_tiles=100,
            filter_cells=5000,
            anchors=20,
            absorbed_anchors=5,
        )
        funnel = funnel_metrics(workload, alignments=10)
        assert funnel["seed_hits"] == 1000
        assert funnel["anchors_extended"] == 15
        assert funnel["filter_pass_rate"] == pytest.approx(0.2)
        assert funnel["absorption_rate"] == pytest.approx(0.25)
        assert funnel["alignments_per_extended_anchor"] == pytest.approx(
            10 / 15
        )
        assert funnel["anchors_per_seed_hit"] == pytest.approx(0.02)

    def test_empty_workload_gives_zero_ratios(self):
        funnel = funnel_metrics(Workload(), alignments=0)
        assert funnel["filter_pass_rate"] == 0.0
        assert funnel["absorption_rate"] == 0.0
        assert funnel["alignments_per_extended_anchor"] == 0.0


class TestStageSummary:
    def _tracer(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        return Tracer(clock=clock)

    def test_aggregates_by_name(self):
        tracer = self._tracer()
        for _ in range(2):
            with tracer.span("filter") as span:
                span.inc("filter_cells", 100)
        stages = stage_summary(tracer.roots)
        assert stages["filter"]["count"] == 2
        assert stages["filter"]["counters"]["filter_cells"] == 200
        assert stages["filter"]["seconds"] > 0

    def test_rates_for_work_counters(self):
        tracer = self._tracer()
        with tracer.span("filter") as span:
            span.inc("filter_cells", 100).inc("anchors", 3)
        stages = stage_summary(tracer.roots)
        rates = stages["filter"]["rates"]
        assert "filter_cells_per_sec" in rates
        assert rates["filter_cells_per_sec"] == pytest.approx(100.0)
        # "anchors" is not a work-unit counter by default
        assert "anchors_per_sec" not in rates

    def test_explicit_rate_counters(self):
        tracer = self._tracer()
        with tracer.span("s") as span:
            span.inc("anchors", 4)
        stages = stage_summary(tracer.roots, rate_counters=["anchors"])
        assert stages["s"]["rates"]["anchors_per_sec"] == pytest.approx(4.0)

    def test_same_name_nesting_not_double_counted(self):
        tracer = self._tracer()
        with tracer.span("extend") as outer:
            with tracer.span("extend"):
                pass
        stages = stage_summary(tracer.roots)
        # only the outer span contributes (the nested one re-covers
        # the same wall-clock)
        assert stages["extend"]["count"] == 1
        assert stages["extend"]["seconds"] == pytest.approx(
            outer.duration
        )


class TestCanonicalBuckets:
    """The shared bucket grid that makes cross-worker merges exact."""

    def test_edges_are_log_spaced_and_cover_range(self):
        from repro.obs import canonical_bucket_edges

        edges = canonical_bucket_edges(low=1e-3, high=10.0, factor=2.0)
        assert edges[0] == pytest.approx(1e-3)
        assert edges[-1] >= 10.0
        for lower, upper in zip(edges, edges[1:]):
            assert upper == pytest.approx(lower * 2.0)

    def test_invalid_parameters_rejected(self):
        from repro.obs import canonical_bucket_edges

        for low, high, factor in [
            (0.0, 1.0, 2.0),
            (1.0, 0.5, 2.0),
            (1e-3, 1.0, 1.0),
        ]:
            with pytest.raises(ValueError):
                canonical_bucket_edges(low, high, factor)

    def test_every_histogram_shares_the_default_grid(self):
        first = Histogram("a")
        second = Histogram("b")
        assert first.edges == second.edges
        first.observe(0.003)
        second.observe(0.003)
        assert first.bucket_counts() == second.bucket_counts()

    def test_merge_gives_exact_buckets_and_percentiles(self):
        """Merging per-worker histograms must equal one histogram that
        saw every observation directly — buckets AND quantiles."""
        workers = [Histogram("lat"), Histogram("lat"), Histogram("lat")]
        values = [0.0001 * (i + 1) ** 2 for i in range(30)]
        for index, value in enumerate(values):
            workers[index % 3].observe(value)
        merged = Histogram("lat")
        for worker in workers:
            merged.merge(worker)
        direct = Histogram("lat")
        for value in values:
            direct.observe(value)
        assert merged.bucket_counts() == direct.bucket_counts()
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == direct.quantile(q)
        assert merged.summary() == direct.summary()

    def test_merge_rebuckets_foreign_edges_exactly(self):
        foreign = Histogram("lat", edges=(0.5, 1.0, 2.0))
        for value in [0.2, 0.7, 1.5, 5.0]:
            foreign.observe(value)
        merged = Histogram("lat").merge(foreign)
        direct = Histogram("lat")
        for value in [0.2, 0.7, 1.5, 5.0]:
            direct.observe(value)
        # Raw values re-bucket onto the canonical grid: exact, not a
        # lossy count redistribution from the foreign buckets.
        assert merged.bucket_counts() == direct.bucket_counts()

    def test_merge_accepts_wire_payload(self):
        merged = Histogram("lat").merge({"values": [0.1, 0.2]})
        assert merged.count == 2
        assert merged.quantile(1.0) == pytest.approx(0.2)

    def test_overflow_bucket_catches_out_of_range(self):
        h = Histogram("lat")
        h.observe(1e9)  # beyond the 1e4 top edge
        assert h.bucket_counts()["inf"] == 1
