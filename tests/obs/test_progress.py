"""Live progress rendering: status line content and TTY behaviour."""

import io

from repro.obs import NO_PROGRESS, ProgressRenderer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_renderer(enabled=True):
    clock = FakeClock()
    stream = io.StringIO()
    renderer = ProgressRenderer(
        stream=stream, enabled=enabled, clock=clock, min_interval=0.0
    )
    return renderer, stream, clock


class TestStatusLine:
    def test_counts_total_and_in_flight(self):
        renderer, _, _ = make_renderer(enabled=False)
        renderer.begin("align", total=8)
        renderer.advance(units=3)
        renderer.set_in_flight(2)
        line = renderer.status_line()
        assert "align 3/8 units" in line
        assert "2 in flight" in line

    def test_throughput_and_eta(self):
        renderer, _, clock = make_renderer(enabled=False)
        renderer.begin("align", total=4)
        clock.t = 10.0
        renderer.advance(units=2, cells=20_000_000)
        line = renderer.status_line()
        assert "2.0M cells/s" in line
        # 2 units took 10s; 2 remain -> ETA 10s.
        assert "ETA 0:10" in line

    def test_retries_and_fallbacks_counted(self):
        renderer, _, _ = make_renderer(enabled=False)
        renderer.begin("align")
        renderer.retried("t1:q1", "timeout", attempt=2)
        renderer.retried("t1:q2", "crash", attempt=1)
        renderer.fell_back("t1:q1", "timeout")
        assert "2 retried, 1 fell back" in renderer.status_line()

    def test_no_total_renders_bare_count(self):
        renderer, _, _ = make_renderer(enabled=False)
        renderer.begin("chain")
        renderer.advance(units=5)
        line = renderer.status_line()
        assert "chain 5 units" in line
        assert "/" not in line
        assert "ETA" not in line


class TestRendering:
    def test_disabled_renderer_writes_nothing(self):
        renderer, stream, _ = make_renderer(enabled=False)
        renderer.begin("align", total=2)
        renderer.advance(units=1)
        renderer.note("hello")
        renderer.close()
        assert stream.getvalue() == ""

    def test_non_tty_auto_disables(self):
        renderer = ProgressRenderer(stream=io.StringIO())
        assert renderer.enabled is False

    def test_enabled_renderer_repaints_in_place(self):
        renderer, stream, _ = make_renderer(enabled=True)
        renderer.begin("align", total=2)
        renderer.advance(units=1)
        output = stream.getvalue()
        assert output.count("\r") >= 2  # repaint, not scroll
        assert "\n" not in output
        assert "align 1/2 units" in output

    def test_notes_persist_above_status_line(self):
        renderer, stream, _ = make_renderer(enabled=True)
        renderer.begin("align", total=2)
        renderer.note("retry storm")
        noted = stream.getvalue()
        assert "retry storm" in noted
        assert "\n" in noted  # the note scrolled, unlike the status line
        # After the note the status line is repainted below it.
        assert stream.getvalue().rstrip().endswith("units")

    def test_close_clears_the_line(self):
        renderer, stream, _ = make_renderer(enabled=True)
        renderer.begin("align", total=2)
        renderer.close()
        assert stream.getvalue().endswith("\r")

    def test_shared_null_progress_is_inert(self):
        NO_PROGRESS.begin("x", total=1)
        NO_PROGRESS.advance(units=1, cells=5)
        NO_PROGRESS.set_in_flight(3)
        NO_PROGRESS.retried("k", "c", 1)
        NO_PROGRESS.fell_back("k", "c")
        NO_PROGRESS.note("t")
        NO_PROGRESS.close()
        assert NO_PROGRESS.enabled is False
