"""Perf-regression gate: tolerance bands, verdicts, CLI exit codes."""

import copy
import json

from repro.cli import main as cli_main
from repro.obs import compare_artifacts, load_artifact
from repro.obs.gate import render_gate


def baseline_artifact():
    return {
        "version": 1,
        "scale": 1,
        "pairs": {
            "ce11-cb4": {
                "darwin": {
                    "funnel": {"seed_hits": 100, "anchors": 5},
                    "workload": {"extension_cells": 1_000_000},
                    "stages": {
                        "align": {
                            "wall_seconds": 2.0,
                            "rates": {
                                "extension_cells_per_sec": 500_000.0
                            },
                        },
                        "chain": {"wall_seconds": 0.001},
                    },
                }
            }
        },
        "fault_overhead": {
            "overhead": {"dispatch_supervised": 0.01},
            "target": 0.05,
            "identical_output": True,
        },
        "obs_overhead": {
            "overhead": {"telemetry_off": 0.0001, "telemetry_on": 0.02},
            "targets": {"telemetry_off": 0.01, "telemetry_on": 0.05},
            "dropped_events": 0,
            "identical_output": True,
        },
        "parallel_scaling": {
            "identical_output": True,
            "streaming_improvement": {"2": 1.6, "4": 1.5},
            "idle_tail_reduction": {"2": 0.8, "4": 0.7},
            "targets": {
                "streaming_improvement": 1.3,
                "idle_tail_reduction": 0.5,
                "at_workers": "2",
            },
        },
    }


class TestCompareArtifacts:
    def test_identical_artifacts_pass(self):
        artifact = baseline_artifact()
        result = compare_artifacts(artifact, copy.deepcopy(artifact))
        assert result.verdict == "pass"
        assert result.counts()["fail"] == 0

    def test_deterministic_counter_divergence_fails(self):
        current = baseline_artifact()
        current["pairs"]["ce11-cb4"]["darwin"]["funnel"]["anchors"] = 6
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"
        assert any(
            "funnel.anchors" in f["id"] for f in result.failures()
        )

    def test_wall_slowdown_beyond_band_fails(self):
        current = baseline_artifact()
        stages = current["pairs"]["ce11-cb4"]["darwin"]["stages"]
        stages["align"]["wall_seconds"] = 3.5  # +75% vs +50% band
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"

    def test_wall_slowdown_within_band_passes(self):
        current = baseline_artifact()
        stages = current["pairs"]["ce11-cb4"]["darwin"]["stages"]
        stages["align"]["wall_seconds"] = 2.5  # +25%
        assert compare_artifacts(current, baseline_artifact()).verdict == (
            "pass"
        )

    def test_rate_regression_beyond_band_fails(self):
        current = baseline_artifact()
        stages = current["pairs"]["ce11-cb4"]["darwin"]["stages"]
        stages["align"]["rates"]["extension_cells_per_sec"] = 250_000.0
        assert compare_artifacts(current, baseline_artifact()).verdict == (
            "fail"
        )

    def test_sub_noise_stage_is_skipped(self):
        current = baseline_artifact()
        stages = current["pairs"]["ce11-cb4"]["darwin"]["stages"]
        stages["chain"]["wall_seconds"] = 0.04  # 40x, but < min_seconds
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "pass"
        assert result.counts()["skip"] >= 1

    def test_overhead_above_target_fails(self):
        current = baseline_artifact()
        current["obs_overhead"]["overhead"]["telemetry_on"] = 0.08
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"

    def test_suspiciously_negative_overhead_warns(self):
        current = baseline_artifact()
        current["fault_overhead"]["overhead"][
            "dispatch_supervised"
        ] = -0.30
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "pass"  # warn never fails the gate
        assert result.counts()["warn"] >= 1

    def test_dropped_bus_events_fail(self):
        current = baseline_artifact()
        current["obs_overhead"]["dropped_events"] = 2
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"

    def test_scale_mismatch_skips_timing_checks(self):
        current = baseline_artifact()
        current["scale"] = 4
        stages = current["pairs"]["ce11-cb4"]["darwin"]["stages"]
        stages["align"]["wall_seconds"] = 50.0
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "pass"  # warned, not failed
        assert result.counts()["warn"] >= 1

    def test_streaming_output_divergence_fails(self):
        current = baseline_artifact()
        current["parallel_scaling"]["identical_output"] = False
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"
        assert any(
            f["id"] == "parallel_scaling.identical_output"
            for f in result.failures()
        )

    def test_streaming_improvement_below_target_fails(self):
        current = baseline_artifact()
        current["parallel_scaling"]["streaming_improvement"]["2"] = 1.1
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"
        assert any(
            f["id"] == "parallel_scaling.streaming_improvement.2"
            for f in result.failures()
        )

    def test_streaming_improvement_regression_vs_baseline_fails(self):
        # Above the absolute target but far below the baseline: the
        # relative regression floor must still catch it.
        current = baseline_artifact()
        base = baseline_artifact()
        base["parallel_scaling"]["streaming_improvement"]["2"] = 3.0
        current["parallel_scaling"]["streaming_improvement"]["2"] = 1.4
        result = compare_artifacts(current, base)
        assert result.verdict == "fail"
        assert any(
            f["id"]
            == "parallel_scaling.streaming_improvement.2.regression"
            for f in result.failures()
        )

    def test_idle_tail_reduction_below_target_fails(self):
        current = baseline_artifact()
        current["parallel_scaling"]["idle_tail_reduction"]["2"] = 0.2
        result = compare_artifacts(current, baseline_artifact())
        assert result.verdict == "fail"
        assert any(
            f["id"] == "parallel_scaling.idle_tail_reduction.2"
            for f in result.failures()
        )

    def test_off_target_worker_counts_are_not_gated(self):
        # Only the at_workers column is gated; w=4 numbers are
        # informational.
        current = baseline_artifact()
        current["parallel_scaling"]["streaming_improvement"]["4"] = 0.9
        current["parallel_scaling"]["idle_tail_reduction"]["4"] = 0.0
        assert compare_artifacts(current, baseline_artifact()).verdict == (
            "pass"
        )

    def test_scale_mismatch_skips_streaming_timing_checks(self):
        current = baseline_artifact()
        current["scale"] = 4
        current["parallel_scaling"]["streaming_improvement"]["2"] = 0.5
        result = compare_artifacts(current, baseline_artifact())
        assert result.counts()["fail"] == 0

    def test_render_gate_mentions_failures_and_tally(self):
        current = baseline_artifact()
        current["pairs"]["ce11-cb4"]["darwin"]["funnel"]["anchors"] = 6
        result = compare_artifacts(current, baseline_artifact())
        text = render_gate(result)
        assert "FAIL" in text
        assert "verdict: fail" in text


class TestBenchCheckCli:
    def write(self, path, artifact):
        path.write_text(json.dumps(artifact))
        return str(path)

    def test_exit_zero_on_clean_baseline(self, tmp_path, capsys):
        current = self.write(tmp_path / "cur.json", baseline_artifact())
        base = self.write(tmp_path / "base.json", baseline_artifact())
        code = cli_main(
            ["bench", "check", "--current", current, "--baseline", base]
        )
        assert code == 0
        assert "verdict: pass" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        regressed = baseline_artifact()
        regressed["pairs"]["ce11-cb4"]["darwin"]["funnel"]["anchors"] = 9
        current = self.write(tmp_path / "cur.json", regressed)
        base = self.write(tmp_path / "base.json", baseline_artifact())
        code = cli_main(
            ["bench", "check", "--current", current, "--baseline", base]
        )
        assert code == 1
        assert "verdict: fail" in capsys.readouterr().out

    def test_warn_only_downgrades_exit_code(self, tmp_path):
        regressed = baseline_artifact()
        regressed["obs_overhead"]["overhead"]["telemetry_on"] = 0.2
        current = self.write(tmp_path / "cur.json", regressed)
        base = self.write(tmp_path / "base.json", baseline_artifact())
        code = cli_main(
            [
                "bench",
                "check",
                "--current",
                current,
                "--baseline",
                base,
                "--warn-only",
            ]
        )
        assert code == 0

    def test_json_verdict_is_machine_readable(self, tmp_path):
        current = self.write(tmp_path / "cur.json", baseline_artifact())
        base = self.write(tmp_path / "base.json", baseline_artifact())
        out = tmp_path / "verdict.json"
        code = cli_main(
            [
                "bench",
                "check",
                "--current",
                current,
                "--baseline",
                base,
                "--json",
                str(out),
            ]
        )
        assert code == 0
        verdict = json.loads(out.read_text())
        assert verdict["verdict"] == "pass"
        assert verdict["counts"]["fail"] == 0

    def test_load_artifact_round_trips(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps(baseline_artifact()))
        assert load_artifact(path) == baseline_artifact()


class TestCommittedBaseline:
    def test_repo_baseline_gates_itself_clean(self):
        """The committed baseline must pass against itself (CI relies
        on a clean-by-construction starting point)."""
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        baseline = repo / "benchmarks" / "baseline.json"
        artifact = load_artifact(baseline)
        result = compare_artifacts(artifact, artifact)
        assert result.verdict in ("pass", "warn")
        assert result.counts()["fail"] == 0
