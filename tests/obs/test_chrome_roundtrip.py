"""Chrome-trace round trips: valid JSON, B/E pairing, stable lanes."""

import json

import pytest

from repro.obs import Tracer, graft_span_dicts, serialize_spans, to_chrome_trace


def worker_span_dicts(units, order=None):
    """Serialized single-span trees for each unit, in arrival order."""
    payloads = {}
    for unit in units:
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("unit_align"):
            pass
        payloads[unit] = serialize_spans(tracer)
    return [(unit, payloads[unit]) for unit in (order or units)]


def traced_run(arrival_order):
    """A parent trace with worker spans grafted in ``arrival_order``."""
    ticks = iter([float(i) for i in range(100)])
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("align"):
        for unit, span_dicts in worker_span_dicts(
            sorted(arrival_order), order=arrival_order
        ):
            for grafted in graft_span_dicts(tracer, span_dicts, base=1.0):
                grafted.attrs.setdefault("unit", unit)
    return tracer


UNITS = ["t1:q1", "t1:q2", "t2:q1"]


class TestTraceShape:
    def test_trace_is_valid_json_with_event_array(self):
        trace = to_chrome_trace(traced_run(UNITS))
        decoded = json.loads(json.dumps(trace))
        assert isinstance(decoded["traceEvents"], list)
        assert decoded["traceEvents"]
        for event in decoded["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)

    def test_x_flavor_events_carry_durations(self):
        trace = to_chrome_trace(traced_run(UNITS), flavor="X")
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans
        for event in spans:
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            to_chrome_trace(traced_run(UNITS), flavor="Z")


class TestBeginEndPairing:
    def test_be_events_pair_and_nest_per_lane(self):
        trace = to_chrome_trace(traced_run(UNITS), flavor="BE")
        stacks = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "M":
                continue
            lane = (event["pid"], event["tid"])
            stack = stacks.setdefault(lane, [])
            if event["ph"] == "B":
                stack.append(event["name"])
            elif event["ph"] == "E":
                assert stack, f"E without B on lane {lane}"
                assert stack.pop() == event["name"]
            else:  # pragma: no cover - BE flavor emits only B/E/M
                raise AssertionError(event["ph"])
        for lane, stack in stacks.items():
            assert stack == [], f"unclosed B events on lane {lane}"

    def test_be_end_timestamps_follow_begins(self):
        trace = to_chrome_trace(traced_run(UNITS), flavor="BE")
        begins = {}
        for event in trace["traceEvents"]:
            key = (event["pid"], event["tid"], event["name"])
            if event["ph"] == "B":
                begins.setdefault(key, []).append(event["ts"])
            elif event["ph"] == "E":
                assert event["ts"] >= begins[key][-1]


class TestStableLanes:
    def test_pid_tid_mapping_identical_across_identical_runs(self):
        """Two identical runs must produce the same lane mapping even
        when worker results arrive in a different order."""
        first = to_chrome_trace(traced_run(UNITS))
        second = to_chrome_trace(traced_run(list(reversed(UNITS))))

        def lane_of(trace):
            lanes = {}
            for event in trace["traceEvents"]:
                unit = event.get("args", {}).get("unit")
                if event["ph"] != "M" and unit is not None:
                    lanes[unit] = (event["pid"], event["tid"])
            return lanes

        assert lane_of(first) == lane_of(second)
        assert len(set(lane_of(first).values())) == len(UNITS)

    def test_parent_spans_stay_on_pid_zero(self):
        trace = to_chrome_trace(traced_run(UNITS))
        parent = [
            e
            for e in trace["traceEvents"]
            if e["ph"] != "M" and e["name"] == "align"
        ]
        assert parent and all(e["pid"] == 0 for e in parent)

    def test_metadata_names_processes_and_unit_threads(self):
        trace = to_chrome_trace(traced_run(UNITS))
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"parent", "workers"} <= names
        assert set(UNITS) <= names

    def test_single_process_trace_has_no_metadata(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("solo"):
            pass
        trace = to_chrome_trace(tracer)
        assert all(e["ph"] != "M" for e in trace["traceEvents"])
