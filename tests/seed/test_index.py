"""Seed index tests."""

import numpy as np
import pytest

from repro.genome import Sequence
from repro.seed import SeedIndex, SpacedSeed


@pytest.fixture
def seed():
    return SpacedSeed(pattern="1011", transitions=False)


def brute_force_hits(target, query, seed):
    """Enumerate seed hits by direct string comparison."""
    hits = set()
    t, q = str(target), str(query)
    offs = seed.match_offsets
    for qp in range(len(q) - seed.span + 1):
        if any(q[qp + o] == "N" for o in offs):
            continue
        for tp in range(len(t) - seed.span + 1):
            if any(t[tp + o] == "N" for o in offs):
                continue
            if all(t[tp + o] == q[qp + o] for o in offs):
                hits.add((tp, qp))
    return hits


class TestBuild:
    def test_indexes_every_valid_position(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 200).astype(np.uint8))
        index = SeedIndex.build(target, seed)
        assert index.size == len(target) - seed.span + 1

    def test_n_positions_skipped(self, seed):
        target = Sequence.from_string("ACGTNACGTA")
        index = SeedIndex.build(target, seed)
        words, valid = seed.words(target)
        assert index.size == int(valid.sum())

    def test_word_frequency(self, seed):
        target = Sequence.from_string("AAAAAAAA")
        index = SeedIndex.build(target, seed)
        word = seed.word_of("AAAA")
        assert index.word_frequency(word) == 5
        assert index.word_frequency(word + 1) == 0


class TestLookup:
    def test_matches_brute_force(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 120).astype(np.uint8), "t")
        query = Sequence(rng.integers(0, 4, 80).astype(np.uint8), "q")
        index = SeedIndex.build(target, seed)
        words, valid = seed.words(query)
        positions = np.flatnonzero(valid)
        t_hits, q_hits = index.lookup_batch(words[positions], positions)
        got = set(zip(t_hits.tolist(), q_hits.tolist()))
        assert got == brute_force_hits(target, query, seed)

    def test_empty_lookup(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
        index = SeedIndex.build(target, seed)
        t_hits, q_hits = index.lookup_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert t_hits.size == q_hits.size == 0

    def test_mismatched_arrays_rejected(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
        index = SeedIndex.build(target, seed)
        with pytest.raises(ValueError):
            index.lookup_batch(
                np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64)
            )

    def test_hit_counts_scale_with_repeats(self, seed):
        target = Sequence.from_string("ACGTACGT" * 10)
        index = SeedIndex.build(target, seed)
        word = seed.word_of("ACGT"[:4])
        assert index.word_frequency(word) >= 9
