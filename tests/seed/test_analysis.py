"""Seed sensitivity analysis tests."""

import numpy as np
import pytest

from repro.seed import SpacedSeed
from repro.seed.analysis import (
    compare_patterns,
    expected_random_hits,
    hit_probability,
    monte_carlo_sensitivity,
)


class TestHitProbability:
    def test_perfect_identity_always_hits(self):
        seed = SpacedSeed(pattern="1011", transitions=False)
        assert hit_probability(seed, 20, 1.0) == 1.0

    def test_zero_identity_never_hits(self):
        seed = SpacedSeed(pattern="111", transitions=False)
        assert hit_probability(seed, 20, 0.0) == 0.0

    def test_short_region_cannot_hit(self):
        seed = SpacedSeed(pattern="10101", transitions=False)
        assert hit_probability(seed, 4, 0.9) == 0.0

    def test_single_window_closed_form(self):
        # length == span: P(hit) = identity^weight exactly
        seed = SpacedSeed(pattern="1101", transitions=False)
        for identity in (0.5, 0.8, 0.95):
            assert hit_probability(seed, 4, identity) == pytest.approx(
                identity**3
            )

    def test_monotone_in_identity(self):
        seed = SpacedSeed(pattern="110101", transitions=False)
        values = [
            hit_probability(seed, 40, p) for p in (0.5, 0.7, 0.9)
        ]
        assert values == sorted(values)

    def test_monotone_in_length(self):
        seed = SpacedSeed(pattern="110101", transitions=False)
        values = [
            hit_probability(seed, n, 0.75) for n in (10, 30, 90)
        ]
        assert values == sorted(values)

    def test_long_span_rejected(self):
        with pytest.raises(ValueError):
            hit_probability(SpacedSeed(), 100, 0.8)

    def test_identity_validated(self):
        seed = SpacedSeed(pattern="111", transitions=False)
        with pytest.raises(ValueError):
            hit_probability(seed, 10, 1.5)

    def test_matches_monte_carlo(self, rng):
        # cross-check the exact DP against brute-force simulation
        seed = SpacedSeed(pattern="11011", transitions=False)
        length, identity = 30, 0.8
        exact = hit_probability(seed, length, identity)
        hits = 0
        trials = 2000
        for _ in range(trials):
            matches = rng.random(length) < identity
            windows = np.lib.stride_tricks.sliding_window_view(
                matches, seed.span
            )[:, list(seed.match_offsets)]
            if windows.all(axis=1).any():
                hits += 1
        assert hits / trials == pytest.approx(exact, abs=0.05)


class TestSpacedBeatsContiguous:
    def test_classic_result(self):
        """Equal-weight spaced seeds are more sensitive than contiguous
        seeds — the reason for 12of19 over a 12-mer."""
        contiguous = "111111"
        spaced = "1101000110011"[:9]  # weight-6 spaced pattern "110100011"
        results = dict(
            compare_patterns([contiguous, "110100011"], 64, 0.7)
        )
        assert results["110100011"] > results[contiguous]

    def test_compare_sorted(self):
        results = compare_patterns(["111", "11011"], 30, 0.8)
        probs = [p for _, p in results]
        assert probs == sorted(probs, reverse=True)


class TestMonteCarlo:
    def test_transition_tolerance_helps(self, rng):
        base = SpacedSeed(pattern="111010011", transitions=False)
        tolerant = SpacedSeed(pattern="111010011", transitions=True)
        strict = monte_carlo_sensitivity(base, 50, 0.5, rng, trials=400)
        loose = monte_carlo_sensitivity(
            tolerant, 50, 0.5, rng, trials=400
        )
        assert loose >= strict

    def test_sensitivity_falls_with_distance(self, rng):
        seed = SpacedSeed()
        near = monte_carlo_sensitivity(seed, 60, 0.1, rng, trials=300)
        far = monte_carlo_sensitivity(seed, 60, 1.0, rng, trials=300)
        assert near > far

    def test_empty_region(self, rng):
        assert monte_carlo_sensitivity(SpacedSeed(), 5, 0.5, rng) == 0.0


class TestRandomHits:
    def test_expected_noise_scales_with_area(self):
        seed = SpacedSeed(transitions=False)
        small = expected_random_hits(seed, 10**4, 10**4)
        large = expected_random_hits(seed, 10**5, 10**5)
        assert large == pytest.approx(100 * small)

    def test_transitions_multiply_noise(self):
        strict = expected_random_hits(
            SpacedSeed(transitions=False), 10**5, 10**5
        )
        loose = expected_random_hits(
            SpacedSeed(transitions=True), 10**5, 10**5
        )
        assert loose == pytest.approx(13 * strict)

    def test_magnitude(self):
        # 12 match positions: 4^-12 per pair
        seed = SpacedSeed(transitions=False)
        expected = expected_random_hits(seed, 10**5, 10**5)
        assert expected == pytest.approx(10**10 * 4.0**-12)
