"""Spaced seed pattern tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome import Sequence
from repro.seed import DEFAULT_PATTERN, SpacedSeed


class TestPattern:
    def test_default_is_12of19(self):
        seed = SpacedSeed()
        assert seed.span == 19
        assert seed.weight == 12
        assert DEFAULT_PATTERN.count("1") == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            SpacedSeed(pattern="")
        with pytest.raises(ValueError):
            SpacedSeed(pattern="102")
        with pytest.raises(ValueError):
            SpacedSeed(pattern="0110")

    def test_match_offsets(self):
        seed = SpacedSeed(pattern="101")
        assert seed.match_offsets == (0, 2)
        assert seed.word_bits == 4


class TestWords:
    def test_contiguous_seed_word(self):
        seed = SpacedSeed(pattern="111")
        # ACG -> A|C|G = 0 + 1<<2 + 2<<4 = 36
        assert seed.word_of("ACG") == 0 + (1 << 2) + (2 << 4)

    def test_dont_care_positions_ignored(self):
        seed = SpacedSeed(pattern="101")
        assert seed.word_of("AAG") == seed.word_of("ATG")
        assert seed.word_of("AAG") != seed.word_of("CAG")

    def test_words_array_matches_word_of(self):
        seed = SpacedSeed(pattern="1101")
        s = Sequence.from_string("ACGTACG")
        words, valid = seed.words(s)
        assert words.size == 4
        assert valid.all()
        for p in range(4):
            assert words[p] == seed.word_of(str(s)[p : p + 4])

    def test_n_invalidates_window(self):
        seed = SpacedSeed(pattern="111")
        words, valid = seed.words(Sequence.from_string("ACNGT"))
        assert list(valid) == [False, False, False]

    def test_n_at_dont_care_is_fine(self):
        seed = SpacedSeed(pattern="101")
        words, valid = seed.words(Sequence.from_string("ANG"))
        assert valid[0]

    def test_short_sequence(self):
        seed = SpacedSeed()
        words, valid = seed.words(Sequence.from_string("ACGT"))
        assert words.size == 0


class TestTransitions:
    def test_neighbour_count(self):
        seed = SpacedSeed(pattern="10101")
        words = np.array([0], dtype=np.int64)
        neighbours = seed.transition_neighbours(words)
        assert len(neighbours) == seed.weight == 3

    def test_neighbour_flips_one_transition(self):
        seed = SpacedSeed(pattern="111", transitions=True)
        word_acg = seed.word_of("ACG")
        neighbours = [
            int(n[0])
            for n in seed.transition_neighbours(
                np.array([word_acg], dtype=np.int64)
            )
        ]
        # transition partners: A<->G, C<->T at each slot
        assert seed.word_of("GCG") in neighbours
        assert seed.word_of("ATG") in neighbours
        assert seed.word_of("ACA") in neighbours
        assert seed.word_of("TCG") not in neighbours  # transversion

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=19, max_size=19))
    def test_transition_neighbourhood_symmetric(self, window):
        seed = SpacedSeed()
        word = seed.word_of(window)
        words = np.array([word], dtype=np.int64)
        for neighbour in seed.transition_neighbours(words):
            back = seed.transition_neighbours(
                np.array([int(neighbour[0])], dtype=np.int64)
            )
            assert word in {int(b[0]) for b in back}
