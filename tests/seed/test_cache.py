"""Seed-index cache: hit/miss accounting, invalidation, corruption."""

import numpy as np
import pytest

from repro.genome import Sequence, markov_genome
from repro.seed import SeedIndex, SeedIndexCache, SpacedSeed, index_cache_key
from repro.seed import cache as cache_module


@pytest.fixture
def target(rng):
    return Sequence(markov_genome(4000, rng).codes, name="t")


@pytest.fixture
def seed():
    return SpacedSeed()


class TestSeedIndexCache:
    def test_miss_then_hit(self, tmp_path, target, seed):
        cache = SeedIndexCache(tmp_path)
        built = cache.get_or_build(target, seed)
        assert (cache.misses, cache.hits) == (1, 0)
        loaded = cache.get_or_build(target, seed)
        assert (cache.misses, cache.hits) == (1, 1)
        np.testing.assert_array_equal(
            built.sorted_words, loaded.sorted_words
        )
        np.testing.assert_array_equal(
            built.sorted_positions, loaded.sorted_positions
        )
        assert loaded.target_length == len(target)
        assert loaded.seed == seed

    def test_loaded_index_matches_fresh_build(self, tmp_path, target, seed):
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed)
        loaded = cache.load(target, seed)
        fresh = SeedIndex.build(target, seed)
        np.testing.assert_array_equal(
            loaded.sorted_words, fresh.sorted_words
        )
        np.testing.assert_array_equal(
            loaded.sorted_positions, fresh.sorted_positions
        )

    def test_key_separates_sequences_and_seeds(self, rng, target):
        other = Sequence(markov_genome(4000, rng).codes, name="u")
        wide = SpacedSeed(pattern="111010011001010111011")
        base = index_cache_key(target, SpacedSeed())
        assert index_cache_key(other, SpacedSeed()) != base
        assert index_cache_key(target, wide) != base
        assert (
            index_cache_key(target, SpacedSeed(transitions=False)) != base
        )

    def test_different_seed_is_a_miss(self, tmp_path, target, seed):
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed)
        assert cache.load(target, SpacedSeed(transitions=False)) is None

    def test_version_bump_invalidates(
        self, tmp_path, target, seed, monkeypatch
    ):
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed)
        monkeypatch.setattr(
            cache_module, "CACHE_VERSION", cache_module.CACHE_VERSION + 1
        )
        assert cache.load(target, seed) is None
        cache.get_or_build(target, seed)
        assert cache.misses == 2

    def test_corrupted_entry_rebuilds(self, tmp_path, target, seed):
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed)
        (entry,) = tmp_path.glob("seedindex-*.npz")
        entry.write_bytes(b"not a numpy archive")
        assert cache.load(target, seed) is None
        rebuilt = cache.get_or_build(target, seed)
        fresh = SeedIndex.build(target, seed)
        np.testing.assert_array_equal(
            rebuilt.sorted_words, fresh.sorted_words
        )

    def test_checksum_mismatch_quarantines(self, tmp_path, target, seed):
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed)
        (entry,) = tmp_path.glob("seedindex-*.npz")
        payload = bytearray(entry.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        entry.write_bytes(bytes(payload))
        assert cache.load(target, seed) is None
        assert cache.quarantined == 1
        assert not entry.exists()
        assert (tmp_path / f"{entry.name}.quarantined").exists()
        rebuilt = cache.get_or_build(target, seed)
        fresh = SeedIndex.build(target, seed)
        np.testing.assert_array_equal(
            rebuilt.sorted_words, fresh.sorted_words
        )

    def test_missing_checksum_is_a_plain_miss(self, tmp_path, target, seed):
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed)
        (sidecar,) = tmp_path.glob("seedindex-*.sha256")
        sidecar.unlink()
        assert cache.load(target, seed) is None
        assert cache.quarantined == 0
        assert not list(tmp_path.glob("*.quarantined"))

    def test_injected_corruption_recovers(self, tmp_path, target, seed):
        from repro.resilience import FaultPlan, ResilienceOptions

        options = ResilienceOptions(
            fault_plan=FaultPlan(seed=4, rates={"corrupt": 1.0})
        )
        cache = SeedIndexCache(tmp_path, resilience=options)
        cache.get_or_build(target, seed)
        assert options.stats.injected_faults == {"corrupt": 1}
        # The stored bytes were flipped: the next lookup must quarantine
        # and rebuild rather than hand back a poisoned index.
        rebuilt = cache.get_or_build(target, seed)
        assert cache.quarantined == 1
        assert options.stats.quarantined_entries == 1
        fresh = SeedIndex.build(target, seed)
        np.testing.assert_array_equal(
            rebuilt.sorted_words, fresh.sorted_words
        )
        np.testing.assert_array_equal(
            rebuilt.sorted_positions, fresh.sorted_positions
        )

    def test_records_cache_attribute_on_span(self, tmp_path, target, seed):
        from repro.obs import Tracer

        tracer = Tracer()
        cache = SeedIndexCache(tmp_path)
        cache.get_or_build(target, seed, tracer=tracer)
        cache.get_or_build(target, seed, tracer=tracer)
        spans = [s for s in tracer.walk() if s.name == "build_index"]
        assert [s.attrs["cache"] for s in spans] == ["miss", "hit"]
