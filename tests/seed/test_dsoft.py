"""D-SOFT seeding tests."""

import numpy as np
import pytest

from repro.genome import Sequence
from repro.seed import (
    DsoftParams,
    SeedIndex,
    SpacedSeed,
    all_seed_hits,
    dsoft_seed,
    query_seed_words,
)


@pytest.fixture
def seed():
    return SpacedSeed(pattern="11011", transitions=False)


@pytest.fixture
def transition_seed():
    return SpacedSeed(pattern="11011", transitions=True)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DsoftParams(chunk_size=0)
        with pytest.raises(ValueError):
            DsoftParams(bin_size=-1)
        with pytest.raises(ValueError):
            DsoftParams(threshold=0)


class TestQueryWords:
    def test_exact_only(self, seed, rng):
        query = Sequence(rng.integers(0, 4, 60).astype(np.uint8))
        words, positions = query_seed_words(query, seed)
        assert words.size == positions.size == 60 - seed.span + 1

    def test_transitions_multiply_lookups(self, transition_seed, rng):
        query = Sequence(rng.integers(0, 4, 60).astype(np.uint8))
        words, positions = query_seed_words(query, transition_seed)
        base = 60 - transition_seed.span + 1
        # m + 1 lookups per position (paper section III-B)
        assert words.size == base * (transition_seed.weight + 1)

    def test_transition_hit_found(self, transition_seed):
        # Target differs from query by a single transition (A->G) at a
        # match position; only the transition-tolerant seed finds it.
        target = Sequence.from_string("GGGGG" + "TTTTTTT")
        query = Sequence.from_string("GGGGA" + "TTTTTTT")
        index = SeedIndex.build(target, transition_seed)
        result = all_seed_hits(index, query)
        assert (0, 0) in set(
            zip(
                result.target_positions.tolist(),
                result.query_positions.tolist(),
            )
        )
        exact = SpacedSeed(pattern="11011", transitions=False)
        index_exact = SeedIndex.build(target, exact)
        result_exact = all_seed_hits(index_exact, query)
        assert (0, 0) not in set(
            zip(
                result_exact.target_positions.tolist(),
                result_exact.query_positions.tolist(),
            )
        )


class TestDsoft:
    def test_one_candidate_per_band(self, seed):
        # A long shared run generates many hits on one diagonal; D-SOFT
        # must collapse them to roughly one candidate per chunk.
        shared = "ACGTTGCAACGTTGCA" * 8
        target = Sequence.from_string(shared)
        query = Sequence.from_string(shared)
        index = SeedIndex.build(target, seed)
        params = DsoftParams(chunk_size=64, bin_size=64, threshold=1)
        result = dsoft_seed(index, query, params)
        assert result.raw_hit_count > result.candidate_count
        assert result.candidate_count <= (len(shared) // 64 + 1) * 4

    def test_threshold_filters_sparse_bands(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 2000).astype(np.uint8))
        query = Sequence(rng.integers(0, 4, 2000).astype(np.uint8))
        index = SeedIndex.build(target, seed)
        low = dsoft_seed(index, query, DsoftParams(threshold=1))
        high = dsoft_seed(index, query, DsoftParams(threshold=3))
        assert high.candidate_count <= low.candidate_count

    def test_empty_query(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 100).astype(np.uint8))
        index = SeedIndex.build(target, seed)
        result = dsoft_seed(
            index, Sequence.from_string(""), DsoftParams()
        )
        assert result.candidate_count == 0
        assert result.raw_hit_count == 0

    def test_candidates_are_real_hits(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 1500).astype(np.uint8))
        query = Sequence(target.codes.copy())
        index = SeedIndex.build(target, seed)
        result = dsoft_seed(index, query, DsoftParams())
        offs = seed.match_offsets
        for tp, qp in zip(
            result.target_positions.tolist(),
            result.query_positions.tolist(),
        ):
            for o in offs:
                assert target.codes[tp + o] == query.codes[qp + o]


class TestAllHits:
    def test_all_hits_superset_of_dsoft_candidates(self, seed, rng):
        target = Sequence(rng.integers(0, 4, 800).astype(np.uint8))
        query = Sequence(rng.integers(0, 4, 800).astype(np.uint8))
        index = SeedIndex.build(target, seed)
        every = all_seed_hits(index, query)
        banded = dsoft_seed(index, query, DsoftParams())
        all_set = set(
            zip(
                every.target_positions.tolist(),
                every.query_positions.tolist(),
            )
        )
        for hit in zip(
            banded.target_positions.tolist(),
            banded.query_positions.tolist(),
        ):
            assert hit in all_set

    def test_seed_limit_drops_frequent_words(self, seed):
        target = Sequence.from_string("A" * 200)
        query = Sequence.from_string("A" * 50)
        index = SeedIndex.build(target, seed)
        unlimited = all_seed_hits(index, query)
        limited = all_seed_hits(index, query, seed_limit=10)
        assert limited.raw_hit_count == 0
        assert unlimited.raw_hit_count > 1000
