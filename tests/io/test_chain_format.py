"""UCSC chain format tests."""


from repro.align import Alignment, Cigar
from repro.chain import build_chains
from repro.io import chain_triples, chains_string


def alignment(cigar_text, t_start=0, q_start=0, score=1000):
    cigar = Cigar.parse(cigar_text)
    return Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + cigar.target_span,
        query_start=q_start,
        query_end=q_start + cigar.query_span,
        score=score,
        cigar=cigar,
    )


class TestTriples:
    def test_single_ungapped_block(self):
        (chain,) = build_chains([alignment("50=")])
        assert chain_triples(chain) == [(50, 0, 0)]

    def test_gaps_within_block(self):
        (chain,) = build_chains([alignment("20=3D30=2I10=")])
        triples = chain_triples(chain)
        assert triples == [(20, 3, 0), (30, 0, 2), (10, 0, 0)]

    def test_inter_block_gaps(self):
        blocks = [
            alignment("20=", 0, 0, score=5000),
            alignment("30=", 100, 50, score=5000),
        ]
        (chain,) = build_chains(blocks)
        triples = chain_triples(chain)
        assert triples == [(20, 80, 30), (30, 0, 0)]

    def test_triples_account_for_spans(self):
        (chain,) = build_chains([alignment("20=5D7=1I3=")])
        triples = chain_triples(chain)
        sizes = sum(size for size, _, _ in triples)
        dts = sum(dt for _, dt, _ in triples)
        dqs = sum(dq for _, _, dq in triples)
        assert sizes + dts == chain.target_end - chain.target_start
        assert sizes + dqs == chain.query_end - chain.query_start

    def test_mismatches_stay_in_block(self):
        (chain,) = build_chains([alignment("10=5X10=")])
        assert chain_triples(chain) == [(25, 0, 0)]


class TestWriter:
    def test_header_fields(self):
        chains = build_chains([alignment("40=", 10, 20, score=999)])
        text = chains_string(chains, "chrT", 1000, "chrQ", 2000)
        header = text.splitlines()[0].split()
        assert header[0] == "chain"
        assert header[2] == "chrT"
        assert int(header[3]) == 1000
        assert int(header[5]) == 10
        assert int(header[6]) == 50
        assert header[8] == "2000"

    def test_multiple_chains_numbered(self):
        chains = build_chains(
            [alignment("40=", 0, 0), alignment("40=", 5000, 100000)]
        )
        text = chains_string(chains, "t", 10**6, "q", 10**6)
        assert text.count("chain ") == 2

    def test_last_line_single_number(self):
        chains = build_chains([alignment("20=3D30=")])
        text = chains_string(chains, "t", 100, "q", 100)
        lines = [l for l in text.splitlines() if l and not l.startswith("chain")]
        assert lines[-1].strip().isdigit()
