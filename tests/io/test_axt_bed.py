"""AXT and BED format tests."""

import io

import numpy as np
import pytest

from repro.align import Alignment, Cigar
from repro.genome import Interval, Sequence
from repro.io import (
    axt_string,
    bed_string,
    read_axt,
    read_bed,
    write_axt,
    write_bed,
)


@pytest.fixture
def pair(rng):
    target = Sequence(rng.integers(0, 4, 300).astype(np.uint8), "chrT")
    q_codes = rng.integers(0, 4, 300).astype(np.uint8)
    q_codes[50:250] = target.codes[40:240]
    return target, Sequence(q_codes, "chrQ")


def alignment(cigar_text="200=", t_start=40, q_start=50, strand=1):
    cigar = Cigar.parse(cigar_text)
    return Alignment(
        target_name="chrT",
        query_name="chrQ",
        target_start=t_start,
        target_end=t_start + cigar.target_span,
        query_start=q_start,
        query_end=q_start + cigar.query_span,
        score=777,
        cigar=cigar,
        strand=strand,
    )


class TestAxt:
    def test_roundtrip(self, pair):
        target, query = pair
        text = axt_string([alignment()], target, query)
        (parsed,) = read_axt(io.StringIO(text))
        assert parsed.target_start == 40
        assert parsed.query_start == 50
        assert parsed.score == 777
        assert parsed.cigar == Cigar.parse("200=")
        parsed.verify(target, query)

    def test_header_coordinates_one_based_inclusive(self, pair):
        target, query = pair
        text = axt_string([alignment()], target, query)
        header = text.splitlines()[0].split()
        assert header[2] == "41"  # 1-based start
        assert header[3] == "240"  # end-inclusive

    def test_gapped_roundtrip(self, rng):
        target = Sequence.from_string("ACGTACGTAC", "t")
        query = Sequence.from_string("ACGTCGTAC", "q")
        original = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=10,
            query_start=0,
            query_end=9,
            score=5,
            cigar=Cigar.parse("4=1D5="),
        )
        text = axt_string([original], target, query)
        (parsed,) = read_axt(io.StringIO(text))
        assert parsed.cigar == original.cigar

    def test_file_roundtrip(self, pair, tmp_path):
        target, query = pair
        path = tmp_path / "out.axt"
        write_axt([alignment()], target, query, path)
        assert len(read_axt(path)) == 1

    def test_comments_skipped(self, pair):
        target, query = pair
        text = "# header comment\n" + axt_string(
            [alignment()], target, query
        )
        assert len(read_axt(io.StringIO(text))) == 1

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            read_axt(io.StringIO("0 chrT 1 2\nAC\nAC\n\n"))

    def test_minus_strand(self, pair):
        target, query = pair
        text = axt_string(
            [alignment(strand=-1)], target, query
        )
        (parsed,) = read_axt(io.StringIO(text))
        assert parsed.strand == -1


class TestBed:
    def test_roundtrip(self):
        intervals = [
            Interval(10, 50, name="exon0"),
            Interval(100, 160, name="exon1", strand=-1),
        ]
        text = bed_string(intervals, "chr1")
        rows = read_bed(io.StringIO(text))
        assert [chrom for chrom, _ in rows] == ["chr1", "chr1"]
        assert rows[0][1] == intervals[0]
        assert rows[1][1].strand == -1

    def test_minimal_three_columns(self):
        rows = read_bed(io.StringIO("chr2 5 25\n"))
        assert rows == [("chr2", Interval(5, 25))]

    def test_track_and_comment_lines_skipped(self):
        text = "track name=exons\n# comment\nchr1\t0\t10\n"
        assert len(read_bed(io.StringIO(text))) == 1

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            read_bed(io.StringIO("chr1 5\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "exons.bed"
        write_bed([Interval(1, 2, name="x")], "chr9", path)
        rows = read_bed(path)
        assert rows[0][0] == "chr9"

    def test_cli_bed_output_parses(self, tmp_path):
        """The CLI's generate subcommand emits parseable BED."""
        from repro.cli import main

        main(
            [
                "generate",
                "--length",
                "4000",
                "--exons",
                "4",
                "--out-dir",
                str(tmp_path),
            ]
        )
        rows = read_bed(tmp_path / "target_exons.bed")
        assert len(rows) == 4
