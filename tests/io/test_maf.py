"""MAF format tests."""

import io

import numpy as np
import pytest

from repro.align import Alignment, Cigar
from repro.core import DarwinWGA
from repro.genome import Sequence
from repro.io import maf_string, read_maf, write_maf


@pytest.fixture
def pair(rng):
    target = Sequence(rng.integers(0, 4, 400).astype(np.uint8), "chrT")
    q_codes = rng.integers(0, 4, 400).astype(np.uint8)
    q_codes[100:300] = target.codes[50:250]
    return target, Sequence(q_codes, "chrQ")


class TestRoundtrip:
    def test_simple_roundtrip(self, pair):
        target, query = pair
        alignment = Alignment(
            target_name="chrT",
            query_name="chrQ",
            target_start=50,
            target_end=250,
            query_start=100,
            query_end=300,
            score=12345,
            cigar=Cigar.from_runs([("=", 200)]),
        )
        text = maf_string([alignment], target, query)
        (parsed,) = read_maf(io.StringIO(text))
        assert parsed.target_start == 50
        assert parsed.query_start == 100
        assert parsed.score == 12345
        assert parsed.cigar == alignment.cigar

    def test_gapped_roundtrip(self, rng):
        target = Sequence.from_string("ACGTACGTAC", "t")
        query = Sequence.from_string("ACGTCGTAC", "q")  # A deleted at 4
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=10,
            query_start=0,
            query_end=9,
            score=10,
            cigar=Cigar.parse("4=1D5="),
        )
        text = maf_string([alignment], target, query)
        (parsed,) = read_maf(io.StringIO(text))
        assert parsed.cigar == alignment.cigar

    def test_file_roundtrip(self, pair, tmp_path):
        target, query = pair
        alignment = Alignment(
            target_name="chrT",
            query_name="chrQ",
            target_start=50,
            target_end=250,
            query_start=100,
            query_end=300,
            score=1,
            cigar=Cigar.from_runs([("=", 200)]),
        )
        path = tmp_path / "out.maf"
        write_maf([alignment], target, query, path)
        assert len(read_maf(path)) == 1

    def test_pipeline_output_roundtrips(self, small_pair):
        target = small_pair.target.genome
        query = small_pair.query.genome
        result = DarwinWGA().align(target, query)
        text = maf_string(result.alignments, target, query)
        parsed = read_maf(io.StringIO(text))
        assert len(parsed) == len(result.alignments)
        for original, recovered in zip(result.alignments, parsed):
            assert recovered.cigar == original.cigar
            assert recovered.strand == original.strand
            recovered.verify(target, query)

    def test_minus_strand_coordinates(self):
        target = Sequence.from_string("ACGT", "t")
        query = Sequence.from_string("ACGT", "q")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=4,
            query_start=0,
            query_end=4,
            score=4,
            cigar=Cigar.parse("4="),
            strand=-1,
        )
        text = maf_string([alignment], target, query)
        assert " - " in text
        (parsed,) = read_maf(io.StringIO(text))
        assert parsed.strand == -1


class TestFormat:
    def test_header_present(self, pair):
        target, query = pair
        assert maf_string([], target, query).startswith("##maf")

    def test_both_gap_column_rejected(self):
        bad = "##maf\na score=1\ns t 0 1 + 4 A-\ns q 0 1 + 4 A-\n\n"
        with pytest.raises(ValueError):
            read_maf(io.StringIO(bad))
