"""Translated whole-genome search tests (paper future-work feature)."""

import numpy as np

from repro.annotate import (
    TblastxParams,
    protein_space_recall,
    translated_search,
)
from repro.annotate.translated_search import _dna_interval
from repro.genome import Sequence, make_species_pair


class TestDnaInterval:
    def test_forward_frames(self):
        assert _dna_interval(0, 2, 5, 100) == (6, 15)
        assert _dna_interval(1, 0, 3, 100) == (1, 10)
        assert _dna_interval(2, 1, 2, 100) == (5, 8)

    def test_reverse_frames(self):
        # frame 3 = frame 0 of the reverse complement
        start, end = _dna_interval(3, 0, 5, 100)
        assert (start, end) == (85, 100)

    def test_clamping(self):
        start, end = _dna_interval(0, 0, 50, 30)
        assert end == 30


class TestTranslatedSearch:
    def test_planted_protein_homology_found(self, rng):
        target = Sequence(
            rng.integers(0, 4, 3000).astype(np.uint8), "t"
        )
        q_codes = rng.integers(0, 4, 3000).astype(np.uint8)
        q_codes[1200:1500] = target.codes[600:900]
        query = Sequence(q_codes, "q")
        hits = translated_search(target, query)
        assert hits
        best = hits[0]
        assert abs(best.target_start - 600) < 30
        assert abs(best.query_start - 1200) < 30

    def test_reverse_strand_homology(self, rng):
        target = Sequence(
            rng.integers(0, 4, 2000).astype(np.uint8), "t"
        )
        q_codes = rng.integers(0, 4, 2000).astype(np.uint8)
        segment = Sequence(target.codes[500:800])
        q_codes[1000:1300] = segment.reverse_complement().codes
        query = Sequence(q_codes, "q")
        hits = translated_search(target, query)
        assert hits
        frames = {(h.target_frame < 3, h.query_frame < 3) for h in hits}
        # one genome read forward, the other reverse (or vice versa)
        assert (True, False) in frames or (False, True) in frames

    def test_random_genomes_no_strong_hits(self, rng):
        target = Sequence(rng.integers(0, 4, 2000).astype(np.uint8), "t")
        query = Sequence(rng.integers(0, 4, 2000).astype(np.uint8), "q")
        hits = translated_search(
            target, query, TblastxParams(threshold=100)
        )
        assert hits == []

    def test_hits_sorted_and_capped(self, rng):
        target = Sequence(rng.integers(0, 4, 1500).astype(np.uint8), "t")
        query = Sequence(target.codes.copy(), "q")
        hits = translated_search(target, query, max_hits=5)
        assert len(hits) <= 5
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_synonymous_divergence_still_detected(self, rng):
        """Protein-space search survives DNA divergence that hits mostly
        third codon positions — the paper's motivation for the mode."""
        target = Sequence(rng.integers(0, 4, 2400).astype(np.uint8), "t")
        q_codes = rng.integers(0, 4, 2400).astype(np.uint8)
        segment = target.codes[900:1200].copy()
        # mutate every third position (codon wobble)
        segment[2::3] = (segment[2::3] + 1) % 4
        q_codes[300:600] = segment
        query = Sequence(q_codes, "q")
        hits = translated_search(target, query, TblastxParams(threshold=40))
        overlapping = [
            h
            for h in hits
            if h.target_start < 1200 and 900 < h.target_end
        ]
        assert overlapping


class TestRecall:
    def test_protein_space_recall(self, rng):
        pair = make_species_pair(
            10000, 0.6, rng, exon_count=5, alignable_fraction=0.4
        )
        hits = translated_search(
            pair.target.genome,
            pair.query.genome,
            TblastxParams(threshold=50),
            max_hits=500,
        )
        recall = protein_space_recall(hits, pair.target.exons)
        assert recall >= 0.6

    def test_empty_exons(self):
        assert protein_space_recall([], []) == 0.0
