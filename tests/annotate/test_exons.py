"""Exon-coverage metric tests."""

import pytest

from repro.align import Alignment, Cigar
from repro.annotate import exon_coverage, uncovered_exons
from repro.chain import build_chains
from repro.genome import Interval


def chains_covering(t_start, length):
    alignment = Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + length,
        query_start=t_start,
        query_end=t_start + length,
        score=length * 10,
        cigar=Cigar.from_runs([("=", length)]),
    )
    return build_chains([alignment])


class TestExonCoverage:
    def test_fully_covered_exon(self):
        chains = chains_covering(100, 500)
        report = exon_coverage(
            chains, [Interval(200, 300)], target_length=1000
        )
        assert report.covered_exons == 1
        assert report.coverage == 1.0

    def test_uncovered_exon(self):
        chains = chains_covering(100, 50)
        report = exon_coverage(
            chains, [Interval(500, 600)], target_length=1000
        )
        assert report.covered_exons == 0

    def test_partial_coverage_threshold(self):
        chains = chains_covering(0, 130)  # covers 30% of [100, 200)
        exons = [Interval(100, 200)]
        strict = exon_coverage(
            chains, exons, target_length=1000, min_fraction=0.5
        )
        lenient = exon_coverage(
            chains, exons, target_length=1000, min_fraction=0.25
        )
        assert strict.covered_exons == 0
        assert lenient.covered_exons == 1

    def test_multiple_exons(self):
        chains = chains_covering(0, 400)
        exons = [Interval(100, 200), Interval(600, 700)]
        report = exon_coverage(chains, exons, target_length=1000)
        assert report.total_exons == 2
        assert report.covered_exons == 1
        assert report.coverage == 0.5

    def test_empty_exons(self):
        report = exon_coverage([], [], target_length=100)
        assert report.coverage == 0.0

    def test_min_fraction_validation(self):
        with pytest.raises(ValueError):
            exon_coverage([], [], target_length=10, min_fraction=0.0)

    def test_uncovered_exons_listed(self):
        chains = chains_covering(0, 400)
        exons = [Interval(100, 200), Interval(600, 700, name="missed")]
        missed = uncovered_exons(chains, exons, target_length=1000)
        assert len(missed) == 1
        assert missed[0].name == "missed"

    def test_exon_beyond_target_clamped(self):
        chains = chains_covering(0, 100)
        report = exon_coverage(
            chains, [Interval(950, 1050)], target_length=1000
        )
        assert report.total_exons == 1
        assert report.covered_exons == 0
