"""Codon translation tests."""

import pytest

from repro.annotate import (
    AA_ALPHABET,
    AA_STOP,
    AA_X,
    decode_protein,
    encode_protein,
    six_frame_translations,
    translate,
)
from repro.genome import Sequence


class TestGeneticCode:
    @pytest.mark.parametrize(
        "codon,amino",
        [
            ("ATG", "M"),
            ("TGG", "W"),
            ("TAA", "*"),
            ("TAG", "*"),
            ("TGA", "*"),
            ("TTT", "F"),
            ("AAA", "K"),
            ("GGG", "G"),
            ("CCC", "P"),
            ("GCT", "A"),
            ("CGA", "R"),
            ("AGC", "S"),
            ("CAT", "H"),
            ("GAA", "E"),
            ("GAC", "D"),
            ("TGT", "C"),
            ("CAA", "Q"),
            ("AAC", "N"),
            ("ATA", "I"),
            ("CTG", "L"),
            ("GTT", "V"),
            ("ACG", "T"),
            ("TAC", "Y"),
        ],
    )
    def test_codon_translation(self, codon, amino):
        seq = Sequence.from_string(codon)
        assert decode_protein(translate(seq)) == amino

    def test_orf(self):
        seq = Sequence.from_string("ATGAAACGTTAG")
        assert decode_protein(translate(seq)) == "MKR*"

    def test_frames(self):
        seq = Sequence.from_string("AATGAAA")
        assert decode_protein(translate(seq, 1)) == "MK"

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            translate(Sequence.from_string("ATG"), 3)

    def test_ambiguous_codon_is_x(self):
        seq = Sequence.from_string("ATNAAA")
        assert decode_protein(translate(seq)) == "XK"

    def test_partial_codon_dropped(self):
        seq = Sequence.from_string("ATGAA")
        assert decode_protein(translate(seq)) == "M"

    def test_empty(self):
        assert translate(Sequence.from_string("")).size == 0


class TestSixFrames:
    def test_six_frames_returned(self):
        frames = six_frame_translations(
            Sequence.from_string("ATGAAACGTTAGACG")
        )
        assert len(frames) == 6

    def test_reverse_frames_use_revcomp(self):
        seq = Sequence.from_string("CAT")  # revcomp ATG
        frames = six_frame_translations(seq)
        assert decode_protein(frames[3]) == "M"


class TestProteinEncoding:
    def test_roundtrip(self):
        text = "ARNDCQEGHILKMFPSTWYVX*"
        assert decode_protein(encode_protein(text)) == text

    def test_unknown_becomes_x(self):
        assert decode_protein(encode_protein("B")) == "X"

    def test_alphabet_constants(self):
        assert AA_ALPHABET[AA_X] == "X"
        assert AA_ALPHABET[AA_STOP] == "*"
