"""BLOSUM62 and mini-TBLASTX tests."""

import numpy as np
import pytest

from repro.annotate import (
    TblastxParams,
    blosum62,
    encode_protein,
    find_orthologous_exons,
)
from repro.genome import Interval, Sequence, make_species_pair


class TestBlosum62:
    def test_symmetric(self):
        matrix = blosum62()
        assert np.array_equal(matrix, matrix.T)

    def test_known_values(self):
        matrix = blosum62()
        w = int(encode_protein("W")[0])
        a = int(encode_protein("A")[0])
        r = int(encode_protein("R")[0])
        assert matrix[w, w] == 11
        assert matrix[a, a] == 4
        assert matrix[a, r] == -1

    def test_diagonal_positive_for_residues(self):
        matrix = blosum62()
        assert all(matrix[i, i] > 0 for i in range(20))

    def test_stop_penalised(self):
        matrix = blosum62()
        stop = int(encode_protein("*")[0])
        a = int(encode_protein("A")[0])
        assert matrix[stop, a] == -4
        assert matrix[stop, stop] == 1


class TestTblastx:
    def test_planted_exons_found(self, rng):
        pair = make_species_pair(
            12000, 0.6, rng, exon_count=6, alignable_fraction=0.4
        )
        hits = find_orthologous_exons(
            pair.target.genome, pair.target.exons, pair.query.genome
        )
        assert len(hits) >= len(pair.target.exons) - 1

    def test_random_exons_not_found(self, rng):
        target = Sequence(
            rng.integers(0, 4, 5000).astype(np.uint8), "t"
        )
        query = Sequence(rng.integers(0, 4, 5000).astype(np.uint8), "q")
        exons = [Interval(1000, 1150), Interval(3000, 3200)]
        hits = find_orthologous_exons(
            target, exons, query, TblastxParams(threshold=80)
        )
        assert hits == []

    def test_reverse_strand_exon_found(self, rng):
        target = Sequence(
            rng.integers(0, 4, 4000).astype(np.uint8), "t"
        )
        q_codes = rng.integers(0, 4, 4000).astype(np.uint8)
        exon = Interval(1000, 1240)
        segment = Sequence(target.codes[exon.start : exon.end])
        q_codes[2000 : 2000 + exon.length] = (
            segment.reverse_complement().codes
        )
        query = Sequence(q_codes, "q")
        hits = find_orthologous_exons(target, [exon], query)
        assert len(hits) == 1
        assert hits[0].query_frame >= 3  # reverse frame

    def test_hit_scores_reported(self, rng):
        pair = make_species_pair(8000, 0.3, rng, exon_count=3)
        hits = find_orthologous_exons(
            pair.target.genome, pair.target.exons, pair.query.genome
        )
        for hit in hits:
            assert hit.score >= TblastxParams().threshold

    def test_param_validation(self):
        with pytest.raises(ValueError):
            TblastxParams(word_size=0)

    def test_empty_exon_list(self, rng):
        target = Sequence(rng.integers(0, 4, 1000).astype(np.uint8))
        assert find_orthologous_exons(target, [], target) == []
