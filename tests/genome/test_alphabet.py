"""Unit tests for the DNA alphabet and encodings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genome import alphabet


class TestEncodeDecode:
    def test_canonical_codes(self):
        assert list(alphabet.encode("ACGTN")) == [0, 1, 2, 3, 4]

    def test_lowercase(self):
        assert list(alphabet.encode("acgtn")) == [0, 1, 2, 3, 4]

    def test_unknown_characters_become_n(self):
        assert list(alphabet.encode("RYK-")) == [4, 4, 4, 4]

    def test_decode_roundtrip(self):
        assert alphabet.decode(alphabet.encode("GATTACA")) == "GATTACA"

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            alphabet.decode(np.array([5], dtype=np.uint8))

    def test_empty(self):
        assert alphabet.decode(alphabet.encode("")) == ""

    @given(st.text(alphabet="ACGTN", max_size=200))
    def test_roundtrip_property(self, text):
        assert alphabet.decode(alphabet.encode(text)) == text


class TestComplement:
    def test_complement_pairs(self):
        assert alphabet.decode(alphabet.complement(alphabet.encode("ACGTN"))) == "TGCAN"

    def test_reverse_complement(self):
        rc = alphabet.reverse_complement(alphabet.encode("AACG"))
        assert alphabet.decode(rc) == "CGTT"

    @given(st.text(alphabet="ACGTN", max_size=100))
    def test_double_complement_is_identity(self, text):
        codes = alphabet.encode(text)
        assert alphabet.decode(alphabet.complement(alphabet.complement(codes))) == text

    @given(st.text(alphabet="ACGTN", max_size=100))
    def test_double_reverse_complement_is_identity(self, text):
        codes = alphabet.encode(text)
        twice = alphabet.reverse_complement(alphabet.reverse_complement(codes))
        assert alphabet.decode(twice) == text


class TestTransitions:
    def test_transition_pairs(self):
        assert alphabet.is_transition(alphabet.A, alphabet.G)
        assert alphabet.is_transition(alphabet.G, alphabet.A)
        assert alphabet.is_transition(alphabet.C, alphabet.T)
        assert alphabet.is_transition(alphabet.T, alphabet.C)

    def test_transversions_are_not_transitions(self):
        assert not alphabet.is_transition(alphabet.A, alphabet.C)
        assert not alphabet.is_transition(alphabet.A, alphabet.T)
        assert not alphabet.is_transition(alphabet.G, alphabet.C)
        assert not alphabet.is_transition(alphabet.G, alphabet.T)

    def test_identity_is_not_a_transition(self):
        for code in range(4):
            assert not alphabet.is_transition(code, code)

    def test_n_is_never_a_transition(self):
        assert not alphabet.is_transition(alphabet.N, alphabet.A)
        assert not alphabet.is_transition(alphabet.A, alphabet.N)

    def test_transition_partner(self):
        assert alphabet.transition_partner(alphabet.A) == alphabet.G
        assert alphabet.transition_partner(alphabet.G) == alphabet.A
        assert alphabet.transition_partner(alphabet.C) == alphabet.T
        assert alphabet.transition_partner(alphabet.T) == alphabet.C

    def test_transition_partner_rejects_n(self):
        with pytest.raises(ValueError):
            alphabet.transition_partner(alphabet.N)

    def test_transition_is_xor_two(self):
        # The seed machinery relies on code ^ 2 being the partner.
        for code in range(4):
            assert alphabet.transition_partner(code) == code ^ 2
