"""Unit tests for the molecular-evolution simulator."""

import numpy as np
import pytest

from repro.genome import (
    EvolutionParams,
    Interval,
    Sequence,
    evolve,
    k80_difference_probabilities,
    make_species_pair,
    plant_exons,
    sample_islands,
)
from repro.genome.synthesis import markov_genome


class TestInterval:
    def test_length(self):
        assert Interval(10, 25).length == 15

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(9, 20))
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_shifted(self):
        shifted = Interval(5, 8, name="x").shifted(3)
        assert (shifted.start, shifted.end, shifted.name) == (8, 11, "x")


class TestK80Probabilities:
    def test_zero_distance(self):
        assert k80_difference_probabilities(0.0, 2.0) == (0.0, 0.0)

    def test_probabilities_increase_with_distance(self):
        values = [
            sum(k80_difference_probabilities(d, 2.0)) for d in (0.1, 0.5, 1.5)
        ]
        assert values[0] < values[1] < values[2]

    def test_saturation_limit(self):
        p, q = k80_difference_probabilities(50.0, 2.0)
        assert abs(p + q - 0.75) < 1e-6

    def test_transition_bias(self):
        # With kappa > 1, transitions outnumber each single transversion.
        p, q = k80_difference_probabilities(0.2, 4.0)
        assert p > q / 2


class TestSubstitutions:
    def test_observed_identity_tracks_distance(self, rng):
        ancestor = markov_genome(30000, rng)
        identities = []
        for d in (0.05, 0.3, 1.0):
            params = EvolutionParams(distance=d, indel_per_substitution=0.0)
            child = evolve(ancestor, [], params, rng, name="c")
            ident = (child.genome.codes == ancestor.codes).mean()
            identities.append(ident)
        assert identities[0] > identities[1] > identities[2]

    def test_zero_distance_is_identity(self, rng):
        ancestor = markov_genome(5000, rng)
        params = EvolutionParams(distance=0.0, indel_per_substitution=0.0)
        child = evolve(ancestor, [], params, rng, name="c")
        assert child.genome == ancestor

    def test_transition_bias_in_output(self, rng):
        ancestor = markov_genome(60000, rng)
        params = EvolutionParams(
            distance=0.2, kappa=4.0, indel_per_substitution=0.0
        )
        child = evolve(ancestor, [], params, rng, name="c")
        diff = ancestor.codes != child.genome.codes
        xor = ancestor.codes[diff] ^ child.genome.codes[diff]
        transitions = int((xor == 2).sum())
        transversions = int((xor != 2).sum())
        assert transitions > transversions


class TestIndels:
    def test_indels_change_length(self, rng):
        ancestor = markov_genome(20000, rng)
        params = EvolutionParams(distance=0.5, indel_per_substitution=0.1)
        child = evolve(ancestor, [], params, rng, name="c")
        assert len(child.genome) != len(ancestor)

    def test_exons_are_indel_free_and_tracked(self, rng):
        ancestor = markov_genome(30000, rng)
        exons = plant_exons(len(ancestor), rng, count=12)
        params = EvolutionParams(
            distance=0.6,
            indel_per_substitution=0.15,
            conserved_multiplier=0.0,
        )
        child = evolve(ancestor, exons, params, rng, name="c")
        assert len(child.exons) == len(exons)
        for old, new in zip(exons, child.exons):
            assert new.length == old.length
            # conserved_multiplier=0 means the exon content is untouched.
            original = ancestor.codes[old.start : old.end]
            evolved = child.genome.codes[new.start : new.end]
            assert np.array_equal(original, evolved)

    def test_exon_tracking_across_many_seeds(self):
        # Regression test: insertion/deletion interplay once corrupted the
        # coordinate map (cursor moved backwards), shifting every later
        # exon.  Verify exact coordinates across many random runs.
        for seed in range(8):
            rng = np.random.default_rng(seed)
            ancestor = markov_genome(15000, rng)
            exons = plant_exons(len(ancestor), rng, count=6)
            params = EvolutionParams(
                distance=0.8,
                indel_per_substitution=0.2,
                conserved_multiplier=0.0,
            )
            child = evolve(ancestor, exons, params, rng, name="c")
            for old, new in zip(exons, child.exons):
                assert np.array_equal(
                    ancestor.codes[old.start : old.end],
                    child.genome.codes[new.start : new.end],
                ), f"seed {seed}: exon moved"


class TestExonCodonIndels:
    def test_codon_indels_change_exon_length_by_multiples_of_three(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            ancestor = markov_genome(20000, rng)
            exons = plant_exons(len(ancestor), rng, count=8)
            params = EvolutionParams(
                distance=1.0,
                indel_per_substitution=0.0,
                exon_indel_per_substitution=0.08,
            )
            child = evolve(ancestor, exons, params, rng, name="c")
            changed = 0
            for old, new in zip(exons, child.exons):
                delta = new.length - old.length
                assert delta % 3 == 0
                if delta != 0:
                    changed += 1
            assert changed >= 1  # at this rate some exon must change

    def test_exon_boundaries_still_track(self, rng):
        ancestor = markov_genome(15000, rng)
        exons = plant_exons(len(ancestor), rng, count=6)
        params = EvolutionParams(
            distance=0.8,
            indel_per_substitution=0.1,
            exon_indel_per_substitution=0.05,
            conserved_multiplier=0.0,
        )
        child = evolve(ancestor, exons, params, rng, name="c")
        for old, new in zip(exons, child.exons):
            # margins are indel-free: the first codon is exactly conserved
            assert np.array_equal(
                ancestor.codes[old.start : old.start + 3],
                child.genome.codes[new.start : new.start + 3],
            )

    def test_zero_rate_leaves_exons_untouched(self, rng):
        ancestor = markov_genome(8000, rng)
        exons = plant_exons(len(ancestor), rng, count=4)
        params = EvolutionParams(
            distance=0.5,
            indel_per_substitution=0.0,
            exon_indel_per_substitution=0.0,
            conserved_multiplier=0.0,
        )
        child = evolve(ancestor, exons, params, rng, name="c")
        for old, new in zip(exons, child.exons):
            assert new.length == old.length


class TestMosaicCaps:
    def test_island_divergence_capped(self, rng):
        distant = make_species_pair(
            20000,
            2.0,
            rng,
            alignable_fraction=0.4,
            island_distance_cap=0.3,
            indel_per_substitution=0.0,
        )
        island_mask = np.zeros(len(distant.target.genome), dtype=bool)
        for island in distant.target.islands:
            island_mask[island.start : island.end] = True
        same = (
            distant.target.genome.codes == distant.query.genome.codes
        )
        # identity inside islands reflects the 0.3 cap, not distance 2.0
        assert same[island_mask].mean() > 0.7

    def test_indel_density_saturates(self):
        lengths = {}
        for distance in (0.6, 2.4):
            rng = np.random.default_rng(9)
            pair = make_species_pair(
                20000,
                distance,
                rng,
                alignable_fraction=0.4,
                indel_per_substitution=0.14,
                indel_distance_cap=0.6,
            )
            lengths[distance] = len(pair.target.genome)
        # beyond the cap the indel count (hence length change) plateaus:
        # both genomes deviate from 20000 by comparable amounts
        dev_low = abs(lengths[0.6] - 20000)
        dev_high = abs(lengths[2.4] - 20000)
        assert dev_high < 4 * max(dev_low, 50)


class TestStructuralEvents:
    def test_duplications_add_sequence_and_paralogs(self, rng):
        ancestor = markov_genome(20000, rng)
        params = EvolutionParams(
            distance=0.1, duplication_count=3, duplication_length=1000
        )
        child = evolve(ancestor, [], params, rng, name="c")
        assert len(child.paralogs) >= 1
        assert len(child.genome) > len(ancestor)

    def test_inversions_preserve_length(self, rng):
        ancestor = markov_genome(20000, rng)
        params = EvolutionParams(
            distance=0.0,
            indel_per_substitution=0.0,
            inversion_count=2,
            inversion_length=1500,
        )
        child = evolve(ancestor, [], params, rng, name="c")
        assert len(child.genome) == len(ancestor)
        assert child.genome != ancestor

    def test_inversion_content_is_reverse_complement(self, rng):
        ancestor = markov_genome(10000, rng)
        params = EvolutionParams(
            distance=0.0,
            indel_per_substitution=0.0,
            inversion_count=1,
            inversion_length=800,
        )
        child = evolve(ancestor, [], params, rng, name="c")
        changed = np.flatnonzero(ancestor.codes != child.genome.codes)
        assert changed.size > 0
        start, end = changed[0], changed[-1] + 1
        segment = Sequence(child.genome.codes[start:end])
        assert np.array_equal(
            segment.reverse_complement().codes, ancestor.codes[start:end]
        )


class TestIslands:
    def test_sample_islands_cover_fraction(self, rng):
        islands = sample_islands(50000, 0.4, 800, rng)
        covered = sum(island.length for island in islands)
        assert 0.3 * 50000 <= covered <= 0.55 * 50000

    def test_islands_do_not_overlap(self, rng):
        islands = sample_islands(30000, 0.5, 600, rng)
        ordered = sorted(islands, key=lambda iv: iv.start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.start

    def test_mosaic_background_is_diverged(self, rng):
        # Disable indels so the two lineages stay positionally comparable.
        pair = make_species_pair(
            20000,
            0.3,
            rng,
            alignable_fraction=0.3,
            island_mean_length=1000,
            indel_per_substitution=0.0,
        )
        t, q = pair.target, pair.query
        island_mask = np.zeros(len(t.genome), dtype=bool)
        for island in t.islands:
            island_mask[island.start : island.end] = True
        same = t.genome.codes == q.genome.codes
        island_ident = same[island_mask].mean()
        background_ident = same[~island_mask].mean()
        assert island_ident > background_ident + 0.2


class TestSpeciesPair:
    def test_pair_basics(self, rng):
        pair = make_species_pair(10000, 0.4, rng, exon_count=5)
        assert pair.distance == 0.4
        assert len(pair.target.exons) == 5
        assert len(pair.query.exons) == 5
        assert pair.target.genome.name == "target"
        assert pair.query.genome.name == "query"

    def test_exons_are_orthologous(self, rng):
        pair = make_species_pair(15000, 0.5, rng, exon_count=8)
        for te, qe in zip(pair.target.exons, pair.query.exons):
            t_slice = pair.target.genome.codes[te.start : te.end]
            q_slice = pair.query.genome.codes[qe.start : qe.end]
            n = min(t_slice.size, q_slice.size)
            assert (t_slice[:n] == q_slice[:n]).mean() > 0.8

    def test_param_validation(self):
        with pytest.raises(ValueError):
            EvolutionParams(distance=-1)
        with pytest.raises(ValueError):
            EvolutionParams(distance=0.1, kappa=0)
        with pytest.raises(ValueError):
            EvolutionParams(distance=0.1, indel_extend=1.0)
