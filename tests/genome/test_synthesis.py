"""Unit tests for synthetic genome generation."""

import numpy as np
import pytest

from repro.genome import (
    DEFAULT_DINUCLEOTIDE_MODEL,
    dinucleotide_counts,
    markov_genome,
    plant_repeats,
    uniform_genome,
)
from repro.genome.synthesis import concatenate
from repro.genome import Sequence


class TestUniformGenome:
    def test_length_and_alphabet(self, rng):
        g = uniform_genome(5000, rng)
        assert len(g) == 5000
        assert g.codes.max() < 4

    def test_gc_content_respected(self, rng):
        g = uniform_genome(50000, rng, gc=0.6)
        assert abs(g.gc_content() - 0.6) < 0.02

    def test_gc_bounds(self, rng):
        with pytest.raises(ValueError):
            uniform_genome(10, rng, gc=1.5)

    def test_deterministic_with_seed(self):
        a = uniform_genome(100, np.random.default_rng(1))
        b = uniform_genome(100, np.random.default_rng(1))
        assert a == b


class TestMarkovGenome:
    def test_length(self, rng):
        assert len(markov_genome(1000, rng)) == 1000

    def test_zero_length(self, rng):
        assert len(markov_genome(0, rng)) == 0

    def test_transition_statistics_follow_model(self, rng):
        g = markov_genome(60000, rng)
        counts = dinucleotide_counts(g)
        observed = counts / counts.sum(axis=1, keepdims=True)
        assert np.allclose(observed, DEFAULT_DINUCLEOTIDE_MODEL, atol=0.03)

    def test_custom_matrix(self, rng):
        matrix = np.full((4, 4), 0.25)
        g = markov_genome(5000, rng, transition_matrix=matrix)
        assert len(g) == 5000

    def test_rejects_bad_matrix_shape(self, rng):
        with pytest.raises(ValueError):
            markov_genome(100, rng, transition_matrix=np.ones((3, 3)))

    def test_rejects_non_stochastic_matrix(self, rng):
        with pytest.raises(ValueError):
            markov_genome(100, rng, transition_matrix=np.ones((4, 4)))


class TestRepeats:
    def test_repeats_increase_seed_multiplicity(self, rng):
        base = markov_genome(20000, rng)
        with_repeats = plant_repeats(
            base, rng, count=20, repeat_length=300, family_size=2
        )
        assert len(with_repeats) == len(base)
        # Repeat copies should create long duplicated substrings; compare
        # 40-mer multiset sizes as a cheap proxy.
        from repro.genome import kmer_counts

        k = 8
        base_counts = kmer_counts(base, k)
        rep_counts = kmer_counts(with_repeats, k)
        assert rep_counts.max() > base_counts.max()

    def test_noop_on_zero_count(self, rng):
        base = markov_genome(1000, rng)
        assert plant_repeats(base, rng, count=0, repeat_length=100) is base

    def test_input_not_modified(self, rng):
        base = markov_genome(2000, rng)
        snapshot = base.codes.copy()
        plant_repeats(base, rng, count=5, repeat_length=100)
        assert np.array_equal(base.codes, snapshot)


class TestDinucleotideCounts:
    def test_simple_counts(self):
        counts = dinucleotide_counts(Sequence.from_string("AACG"))
        assert counts[0, 0] == 1  # AA
        assert counts[0, 1] == 1  # AC
        assert counts[1, 2] == 1  # CG
        assert counts.sum() == 3

    def test_n_excluded(self):
        counts = dinucleotide_counts(Sequence.from_string("ANA"))
        assert counts.sum() == 0

    def test_short_sequence(self):
        assert dinucleotide_counts(Sequence.from_string("A")).sum() == 0


class TestConcatenate:
    def test_concatenate(self):
        parts = [Sequence.from_string("AC"), Sequence.from_string("GT")]
        joined = concatenate(parts, name="chr")
        assert str(joined) == "ACGT"
        assert joined.name == "chr"

    def test_empty(self):
        assert len(concatenate([], name="chr")) == 0
