"""Unit tests for the Sequence type."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genome import Sequence

dna = st.text(alphabet="ACGTN", max_size=200)


class TestConstruction:
    def test_from_string(self):
        s = Sequence.from_string("ACGT", name="chr1")
        assert len(s) == 4
        assert str(s) == "ACGT"
        assert s.name == "chr1"

    def test_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            Sequence(np.array([7], dtype=np.uint8))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Sequence(np.zeros((2, 2), dtype=np.uint8))

    def test_codes_are_read_only(self):
        s = Sequence.from_string("ACGT")
        with pytest.raises(ValueError):
            s.codes[0] = 3

    def test_repr_mentions_name_and_length(self):
        s = Sequence.from_string("ACGT" * 10, name="chrX")
        assert "chrX" in repr(s)
        assert "40" in repr(s)


class TestSlicing:
    def test_getitem_int(self):
        s = Sequence.from_string("ACGT")
        assert s[1] == 1

    def test_getitem_slice(self):
        s = Sequence.from_string("ACGTACGT")
        assert str(s[2:5]) == "GTA"

    def test_slice_clamps(self):
        s = Sequence.from_string("ACGT")
        assert str(s.slice(-5, 100)) == "ACGT"
        assert len(s.slice(3, 2)) == 0

    def test_concat(self):
        a = Sequence.from_string("AC", name="a")
        b = Sequence.from_string("GT")
        assert str(a.concat(b)) == "ACGT"
        assert a.concat(b).name == "a"


class TestBiology:
    def test_reverse_complement(self):
        s = Sequence.from_string("AACGTN")
        assert str(s.reverse_complement()) == "NACGTT"

    def test_gc_content(self):
        assert Sequence.from_string("GGCC").gc_content() == 1.0
        assert Sequence.from_string("AATT").gc_content() == 0.0
        assert Sequence.from_string("ACGT").gc_content() == 0.5

    def test_gc_content_ignores_n(self):
        assert Sequence.from_string("GCNN").gc_content() == 1.0

    def test_gc_content_empty(self):
        assert Sequence.from_string("NNN").gc_content() == 0.0

    def test_base_counts(self):
        counts = Sequence.from_string("AACGTNN").base_counts()
        assert list(counts) == [2, 1, 1, 1, 2]


class TestEquality:
    def test_equal_sequences(self):
        assert Sequence.from_string("ACGT") == Sequence.from_string("ACGT")

    def test_name_does_not_affect_equality(self):
        a = Sequence.from_string("ACGT", name="x")
        b = Sequence.from_string("ACGT", name="y")
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal(self):
        assert Sequence.from_string("ACGT") != Sequence.from_string("ACGA")

    def test_not_equal_to_string(self):
        assert Sequence.from_string("ACGT") != "ACGT"


class TestProperties:
    @given(dna)
    def test_string_roundtrip(self, text):
        assert str(Sequence.from_string(text)) == text

    @given(dna)
    def test_reverse_complement_involution(self, text):
        s = Sequence.from_string(text)
        assert str(s.reverse_complement().reverse_complement()) == text

    @given(dna)
    def test_length_preserved_by_revcomp(self, text):
        s = Sequence.from_string(text)
        assert len(s.reverse_complement()) == len(s)

    @given(dna, dna)
    def test_concat_length(self, a, b):
        sa, sb = Sequence.from_string(a), Sequence.from_string(b)
        assert len(sa.concat(sb)) == len(a) + len(b)

    @given(dna)
    def test_iteration_matches_codes(self, text):
        s = Sequence.from_string(text)
        assert list(s) == list(s.codes)
