"""Unit tests for k-mer-preserving shuffles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome import (
    Sequence,
    kmer_counts,
    shuffle_preserving_kmers,
)
from repro.genome.synthesis import markov_genome


class TestKmerCounts:
    def test_single_kmer(self):
        counts = kmer_counts(Sequence.from_string("AAA"), 2)
        assert counts[0] == 2  # "AA" encoded as 0*5+0
        assert counts.sum() == 2

    def test_k_longer_than_sequence(self):
        assert kmer_counts(Sequence.from_string("AC"), 5).sum() == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmer_counts(Sequence.from_string("ACGT"), 0)


class TestShuffle:
    def test_dinucleotide_counts_preserved(self, rng):
        genome = markov_genome(5000, rng)
        shuffled = shuffle_preserving_kmers(genome, rng, k=2)
        assert np.array_equal(
            kmer_counts(genome, 2), kmer_counts(shuffled, 2)
        )

    def test_length_preserved(self, rng):
        genome = markov_genome(3000, rng)
        shuffled = shuffle_preserving_kmers(genome, rng, k=2)
        assert len(shuffled) == len(genome)

    def test_order_destroyed(self, rng):
        genome = markov_genome(5000, rng)
        shuffled = shuffle_preserving_kmers(genome, rng, k=2)
        assert shuffled != genome

    def test_k1_preserves_composition(self, rng):
        genome = markov_genome(2000, rng)
        shuffled = shuffle_preserving_kmers(genome, rng, k=1)
        assert np.array_equal(
            genome.base_counts(), shuffled.base_counts()
        )

    def test_k3_preserves_trinucleotides(self, rng):
        genome = markov_genome(4000, rng)
        shuffled = shuffle_preserving_kmers(genome, rng, k=3)
        assert np.array_equal(
            kmer_counts(genome, 3), kmer_counts(shuffled, 3)
        )

    def test_short_sequence_passthrough(self, rng):
        s = Sequence.from_string("AC")
        assert shuffle_preserving_kmers(s, rng, k=2) == s

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            shuffle_preserving_kmers(Sequence.from_string("ACGT"), rng, k=0)

    def test_name_is_marked(self, rng):
        genome = markov_genome(1000, rng)
        shuffled = shuffle_preserving_kmers(genome, rng)
        assert "shuffled" in shuffled.name

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=10, max_size=300), st.integers(0, 1000))
    def test_doublet_preservation_property(self, text, seed):
        genome = Sequence.from_string(text)
        rng = np.random.default_rng(seed)
        shuffled = shuffle_preserving_kmers(genome, rng, k=2)
        assert np.array_equal(
            kmer_counts(genome, 2), kmer_counts(shuffled, 2)
        )
        assert shuffled.codes[0] == genome.codes[0]
