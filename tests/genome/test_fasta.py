"""Unit tests for FASTA I/O."""

import io

import pytest

from repro.genome import (
    Sequence,
    fasta_string,
    iter_fasta,
    read_fasta,
    write_fasta,
)


@pytest.fixture
def records():
    return [
        Sequence.from_string("ACGTACGTACGT", name="chr1"),
        Sequence.from_string("NNNNAC", name="chr2"),
        Sequence.from_string("", name="empty"),
    ]


class TestRoundtrip:
    def test_string_roundtrip(self, records):
        text = fasta_string(records)
        parsed = read_fasta(io.StringIO(text))
        assert parsed == records
        assert [p.name for p in parsed] == ["chr1", "chr2", "empty"]

    def test_file_roundtrip(self, records, tmp_path):
        path = tmp_path / "genome.fa"
        write_fasta(records, path)
        assert read_fasta(path) == records

    def test_line_wrapping(self, records):
        text = fasta_string(records, line_width=4)
        body_lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith(">")
        ]
        assert all(len(line) <= 4 for line in body_lines)

    def test_wrapped_content_identical(self, records):
        wide = read_fasta(io.StringIO(fasta_string(records, line_width=80)))
        narrow = read_fasta(io.StringIO(fasta_string(records, line_width=3)))
        assert wide == narrow


class TestParsing:
    def test_header_keeps_first_token(self):
        text = ">chr1 assembled by hand\nACGT\n"
        (record,) = read_fasta(io.StringIO(text))
        assert record.name == "chr1"

    def test_multiline_record(self):
        text = ">a\nAC\nGT\n\nAC\n"
        (record,) = read_fasta(io.StringIO(text))
        assert str(record) == "ACGTAC"

    def test_data_before_header_raises(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO("ACGT\n>late\nAC\n"))

    def test_empty_input(self):
        assert read_fasta(io.StringIO("")) == []

    def test_iter_is_lazy_per_record(self):
        text = ">a\nAC\n>b\nGT\n"
        iterator = iter_fasta(io.StringIO(text))
        first = next(iterator)
        assert first.name == "a"
        second = next(iterator)
        assert second.name == "b"

    def test_lowercase_sequence(self):
        (record,) = read_fasta(io.StringIO(">x\nacgt\n"))
        assert str(record) == "ACGT"


class TestValidation:
    def test_bad_line_width(self, records):
        with pytest.raises(ValueError):
            fasta_string(records, line_width=0)
