"""Masking tests."""

import numpy as np
import pytest

from repro.genome import (
    Sequence,
    apply_soft_mask,
    entropy_mask,
    frequency_mask,
    mask_intervals,
    mask_stats,
)
from repro.genome.synthesis import markov_genome


class TestEntropyMask:
    def test_homopolymer_masked(self, rng):
        random_part = markov_genome(500, rng)
        seq = Sequence.from_string(str(random_part) + "A" * 200 + str(random_part))
        mask = entropy_mask(seq)
        # the poly-A run is low complexity
        assert mask[550:650].mean() > 0.8

    def test_random_sequence_mostly_unmasked(self, rng):
        seq = markov_genome(2000, rng)
        mask = entropy_mask(seq)
        assert mask.mean() < 0.2

    def test_tandem_repeat_masked(self, rng):
        repeat = "ACACACAC" * 20
        seq = Sequence.from_string(repeat)
        mask = entropy_mask(seq, min_entropy=2.0)
        assert mask.mean() > 0.8

    def test_short_sequence(self, rng):
        mask = entropy_mask(Sequence.from_string("ACGT"))
        assert mask.shape == (4,)
        assert not mask.any()


class TestFrequencyMask:
    def test_repeated_word_masked(self, rng):
        unit = "ACGGTTACGCAT"  # 12bp word repeated many times
        background = str(markov_genome(3000, rng))
        seq = Sequence.from_string(background + unit * 30 + background)
        mask = frequency_mask(seq, word_length=12, threshold_multiple=10)
        repeat_zone = mask[3000 : 3000 + 12 * 30]
        assert repeat_zone.mean() > 0.9
        assert mask[:2000].mean() < 0.05

    def test_unique_sequence_unmasked(self, rng):
        seq = markov_genome(5000, rng)
        mask = frequency_mask(seq, word_length=12)
        assert mask.mean() < 0.02

    def test_n_runs_not_masked(self):
        seq = Sequence.from_string("N" * 100)
        mask = frequency_mask(seq, word_length=12)
        assert not mask.any()


class TestMaskApplication:
    def test_soft_mask_replaces_with_n(self):
        seq = Sequence.from_string("ACGTACGT")
        mask = np.zeros(8, dtype=bool)
        mask[2:5] = True
        masked = apply_soft_mask(seq, mask)
        assert str(masked) == "ACNNNCGT"

    def test_mask_shape_checked(self):
        seq = Sequence.from_string("ACGT")
        with pytest.raises(ValueError):
            apply_soft_mask(seq, np.zeros(3, dtype=bool))

    def test_mask_intervals(self):
        mask = np.array([0, 1, 1, 0, 0, 1, 0, 1, 1, 1], dtype=bool)
        assert mask_intervals(mask) == [(1, 3), (5, 6), (7, 10)]
        assert mask_intervals(np.zeros(5, dtype=bool)) == []
        assert mask_intervals(np.ones(3, dtype=bool)) == [(0, 3)]

    def test_mask_stats(self):
        mask = np.array([1, 1, 0, 0], dtype=bool)
        stats = mask_stats(mask)
        assert stats.masked_bases == 2
        assert stats.fraction == 0.5
        assert stats.intervals == ((0, 2),)

    def test_masked_sequence_cannot_seed(self, rng):
        from repro.seed import SeedIndex, SpacedSeed

        repeat = Sequence.from_string("ACGGTTACGCATACGGTTACG" * 30, "t")
        mask = np.ones(len(repeat), dtype=bool)
        masked = apply_soft_mask(repeat, mask)
        index = SeedIndex.build(masked, SpacedSeed())
        assert index.size == 0
