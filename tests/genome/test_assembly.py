"""Assembly (multi-chromosome) tests."""

import numpy as np
import pytest

from repro.genome import Assembly, Sequence, split_into_chromosomes
from repro.genome.synthesis import markov_genome


@pytest.fixture
def assembly():
    return Assembly(
        name="asm1",
        chromosomes=[
            Sequence.from_string("ACGT" * 100, name="chr1"),
            Sequence.from_string("GGCC" * 50, name="chr2"),
            Sequence.from_string("AT" * 25, name="chr3"),
        ],
    )


class TestAssembly:
    def test_length_and_total(self, assembly):
        assert len(assembly) == 3
        assert assembly.total_length == 400 + 200 + 50

    def test_lookup(self, assembly):
        assert len(assembly["chr2"]) == 200
        assert "chr3" in assembly
        assert "chrX" not in assembly
        with pytest.raises(KeyError):
            assembly["chrX"]

    def test_names_and_sizes(self, assembly):
        assert assembly.names() == ["chr1", "chr2", "chr3"]
        assert assembly.sizes()["chr1"] == 400

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Assembly(
                name="bad",
                chromosomes=[
                    Sequence.from_string("AC", name="chr1"),
                    Sequence.from_string("GT", name="chr1"),
                ],
            )

    def test_unnamed_rejected(self):
        with pytest.raises(ValueError):
            Assembly(name="bad", chromosomes=[Sequence.from_string("AC")])

    def test_add(self, assembly):
        assembly.add(Sequence.from_string("AAAA", name="chr4"))
        assert len(assembly) == 4
        with pytest.raises(ValueError):
            assembly.add(Sequence.from_string("CC", name="chr4"))

    def test_gc_content_weighted(self, assembly):
        # chr1 50%, chr2 100%, chr3 0% weighted 400/200/50
        expected = (0.5 * 400 + 1.0 * 200 + 0.0 * 50) / 650
        assert assembly.gc_content() == pytest.approx(expected)

    def test_n50(self, assembly):
        # lengths 400, 200, 50; half of 650 is 325 -> N50 = 400
        assert assembly.n50() == 400

    def test_fasta_roundtrip(self, assembly, tmp_path):
        path = tmp_path / "asm.fa"
        assembly.to_fasta(path)
        loaded = Assembly.from_fasta(path, name="asm1")
        assert loaded.names() == assembly.names()
        assert loaded.total_length == assembly.total_length

    def test_empty_assembly(self):
        empty = Assembly(name="none")
        assert empty.total_length == 0
        assert empty.n50() == 0
        assert empty.gc_content() == 0.0


class TestSplit:
    def test_even_split(self, rng):
        genome = markov_genome(1000, rng, name="g")
        assembly = split_into_chromosomes(genome, 4)
        assert len(assembly) == 4
        assert assembly.total_length == 1000
        assert assembly.names() == ["chr1", "chr2", "chr3", "chr4"]

    def test_random_split_preserves_content(self, rng):
        genome = markov_genome(500, rng, name="g")
        assembly = split_into_chromosomes(genome, 3, rng=rng)
        joined = np.concatenate([c.codes for c in assembly])
        assert np.array_equal(joined, genome.codes)

    def test_validation(self, rng):
        genome = markov_genome(10, rng)
        with pytest.raises(ValueError):
            split_into_chromosomes(genome, 0)
        with pytest.raises(ValueError):
            split_into_chromosomes(genome, 100)
