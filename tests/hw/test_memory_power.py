"""DRAM model and Table IV/VI power-model tests."""

import pytest

from repro.hw import (
    CPU_POWER_W,
    DramSystem,
    FPGA_POWER_W,
    asic_estimate,
    asic_power_w,
    bandwidth_bound_tiles_per_sec,
    bsw_tile_bytes,
    gactx_tile_bytes,
)


class TestDram:
    def test_sustained_bandwidth(self):
        dram = DramSystem()
        assert dram.sustained_bandwidth == pytest.approx(
            4 * 19.2e9 * 0.7
        )

    def test_power_scales_with_traffic(self):
        dram = DramSystem()
        idle = dram.power(0)
        busy = dram.power(40e9)
        assert busy > idle
        # calibrated near the paper's 3.10 W at ~46 GB/s
        assert dram.power(46e9) == pytest.approx(3.10, abs=0.2)

    def test_bandwidth_bound(self):
        dram = DramSystem()
        rate = bandwidth_bound_tiles_per_sec(dram, 320)
        assert rate == pytest.approx(dram.sustained_bandwidth / 320)

    def test_bandwidth_bound_validation(self):
        dram = DramSystem()
        with pytest.raises(ValueError):
            bandwidth_bound_tiles_per_sec(dram, 320, share=0)
        with pytest.raises(ValueError):
            bandwidth_bound_tiles_per_sec(dram, 0)


class TestTileTraffic:
    def test_bsw_tile_bytes(self):
        # two 320-base sequences at 4 bits/base
        assert bsw_tile_bytes(320) == 320

    def test_gactx_includes_traceback(self):
        assert gactx_tile_bytes(1920) > 2 * 1920 * 4 // 8


class TestTableIV:
    def test_default_matches_paper_totals(self):
        est = asic_estimate()
        assert est.area_mm2 == pytest.approx(35.92, abs=0.1)
        assert est.power_w == pytest.approx(43.34, abs=1.0)

    def test_component_breakdown(self):
        est = asic_estimate()
        by_name = {c.name: c for c in est.components}
        assert by_name["BSW Logic"].area_mm2 == pytest.approx(16.6, abs=0.05)
        assert by_name["GACT-X Logic"].power_w == pytest.approx(6.72, abs=0.05)
        assert by_name["Traceback SRAM"].area_mm2 == pytest.approx(
            15.12, abs=0.05
        )

    def test_scaling_with_arrays(self):
        half = asic_estimate(bsw_arrays=32)
        full = asic_estimate(bsw_arrays=64)
        assert half.area_mm2 < full.area_mm2
        assert half.power_w < full.power_w

    def test_clock_scales_power_not_area(self):
        slow = asic_estimate(clock_hz=0.5e9)
        fast = asic_estimate(clock_hz=1e9)
        assert slow.area_mm2 == pytest.approx(fast.area_mm2)
        assert slow.power_w < fast.power_w

    def test_table_rendering(self):
        text = asic_estimate().table()
        assert "BSW Logic" in text
        assert "Total" in text


class TestTableVI:
    def test_platform_power_ordering(self):
        """Paper Table VI: CPU 215 W > FPGA 65 W > ASIC 43 W."""
        assert CPU_POWER_W == 215.0
        assert FPGA_POWER_W == 65.0
        assert asic_power_w() < FPGA_POWER_W < CPU_POWER_W
