"""Systolic array cycle-model tests."""

import pytest

from repro.hw import (
    SystolicArrayConfig,
    stripe_cycles,
    stripes_of,
    tile_cycles_from_windows,
)


@pytest.fixture
def config():
    return SystolicArrayConfig(n_pe=4, clock_hz=100e6, tile_overhead=0)


class TestStripeCycles:
    def test_width_plus_skew(self, config):
        assert stripe_cycles(10, config) == 10 + 3

    def test_zero_width(self, config):
        assert stripe_cycles(0, config) == 0

    def test_overhead_added(self):
        config = SystolicArrayConfig(n_pe=4, stripe_overhead=5)
        assert stripe_cycles(10, config) == 10 + 3 + 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicArrayConfig(n_pe=0)
        with pytest.raises(ValueError):
            SystolicArrayConfig(clock_hz=0)


class TestStripesOf:
    def test_grouping(self):
        windows = [(1, 5), (2, 6), (1, 8), (3, 9), (4, 10)]
        stripes = stripes_of(windows, n_pe=4)
        assert stripes[0] == (1, 9)  # union of first four rows
        assert stripes[1] == (4, 10)

    def test_single_stripe(self):
        assert stripes_of([(2, 4), (3, 5)], n_pe=8) == [(2, 5)]


class TestTileCycles:
    def test_cycles_sum_over_stripes(self, config):
        windows = [(1, 10)] * 8  # two stripes of width 10
        assert tile_cycles_from_windows(windows, config) == 2 * (10 + 3)

    def test_traceback_added(self, config):
        windows = [(1, 10)] * 4
        base = tile_cycles_from_windows(windows, config)
        with_tb = tile_cycles_from_windows(
            windows, config, traceback_steps=20
        )
        assert with_tb == base + 20

    def test_tile_overhead(self):
        config = SystolicArrayConfig(n_pe=4, tile_overhead=100)
        assert tile_cycles_from_windows([(1, 4)], config) == 100 + 4 + 3
