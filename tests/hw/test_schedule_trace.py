"""Scheduler and DRAM-trace model tests."""

import pytest

from repro.hw import (
    BURST_BYTES,
    DramSystem,
    generate_trace,
    provisioning_check,
    saturation_sweep,
    schedule_tiles,
    summarise,
    tile_accesses,
)


class TestScheduler:
    def test_single_array_serialises(self):
        result = schedule_tiles([10, 20, 30], n_arrays=1)
        assert result.makespan_cycles == 60
        assert result.utilisation == pytest.approx(1.0)

    def test_parallel_arrays_shorten_makespan(self):
        tiles = [100] * 8
        one = schedule_tiles(tiles, n_arrays=1)
        four = schedule_tiles(tiles, n_arrays=4)
        assert four.makespan_cycles == one.makespan_cycles / 4

    def test_imbalanced_tiles(self):
        result = schedule_tiles([100, 1, 1, 1], n_arrays=2)
        # greedy: array0 gets 100; array1 gets the three 1-cycle tiles
        assert result.makespan_cycles == 100
        assert sorted(result.per_array_busy) == [3, 100]

    def test_dispatch_overhead_limits_scaling(self):
        tiles = [10] * 100
        free = schedule_tiles(tiles, n_arrays=50)
        throttled = schedule_tiles(
            tiles, n_arrays=50, dispatch_overhead=20
        )
        assert throttled.makespan_cycles > free.makespan_cycles
        assert throttled.utilisation < free.utilisation

    def test_throughput(self):
        result = schedule_tiles([100] * 10, n_arrays=2)
        assert result.throughput_tiles_per_sec(
            1e6
        ) == pytest.approx(10 * 1e6 / result.makespan_cycles)

    def test_empty_stream(self):
        result = schedule_tiles([], n_arrays=4)
        assert result.makespan_cycles == 0
        assert result.utilisation == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_tiles([1], n_arrays=0)
        with pytest.raises(ValueError):
            schedule_tiles([-1], n_arrays=1)

    def test_saturation_sweep_monotone(self):
        tiles = [50] * 64
        rows = saturation_sweep(tiles, (1, 2, 4, 8))
        makespans = [m for _, m, _ in rows]
        assert makespans == sorted(makespans, reverse=True)


class TestTrace:
    def test_tile_accesses(self):
        reads, writes = tile_accesses(320, with_traceback=False)
        # 2 x 320 bases x 4 bits = 320 bytes = 5 bursts
        assert reads == 5
        assert writes == 0
        reads, writes = tile_accesses(1920, with_traceback=True)
        assert reads == (2 * 1920 * 4 // 8 + 63) // 64
        assert writes == (2 * 1920 * 2 // 8 + 63) // 64

    def test_generate_and_summarise(self):
        accesses = list(
            generate_trace([0, 100, 200], 320, with_traceback=False)
        )
        assert len(accesses) == 3 * 5
        assert all(not a.is_write for a in accesses)
        # addresses strictly increase burst by burst
        addresses = [a.address for a in accesses]
        assert addresses == sorted(addresses)
        assert addresses[1] - addresses[0] == BURST_BYTES
        summary = summarise(iter(accesses))
        assert summary.reads == 15
        assert summary.writes == 0
        assert summary.bytes_total == 15 * BURST_BYTES

    def test_traceback_writes_present(self):
        accesses = list(generate_trace([0], 1920, with_traceback=True))
        assert any(a.is_write for a in accesses)

    def test_bandwidth(self):
        accesses = list(generate_trace([0, 10], 320))
        summary = summarise(iter(accesses))
        bw = summary.bandwidth_bytes_per_sec(1e9)
        assert bw > 0

    def test_provisioning_check(self):
        accesses = list(generate_trace(range(0, 1000, 5), 320))
        summary = summarise(iter(accesses))
        dram = DramSystem()
        fraction, bound = provisioning_check(summary, dram, 1e9)
        assert fraction > 0
        assert bound == (fraction >= 1.0)

    def test_empty_trace(self):
        summary = summarise(iter([]))
        assert summary.accesses == 0
        assert summary.bandwidth_bytes_per_sec(1e9) == 0.0
