"""Whole-accelerator simulation tests."""

import pytest

from repro.core import TileTrace, Workload
from repro.hw import (
    AsicPlatform,
    FpgaPlatform,
    simulate,
)


def make_workload(filter_tiles=5000, extension_tiles=8, with_traces=True):
    traces = []
    if with_traces:
        traces = [
            TileTrace(
                rows=512,
                cells=512 * 200,
                row_windows=tuple((1, 200) for _ in range(512)),
            )
            for _ in range(extension_tiles)
        ]
    return Workload(
        seed_hits=10_000,
        filter_tiles=filter_tiles,
        filter_cells=filter_tiles * 320 * 65,
        extension_tiles=extension_tiles,
        extension_cells=sum(t.cells for t in traces),
        extension_tile_traces=traces,
    )


class TestSimulate:
    def test_fpga_report_structure(self):
        report = simulate(make_workload(), FpgaPlatform())
        assert report.filter.tiles == 5000
        assert report.extension.tiles == 8
        assert report.runtime_seconds > 0
        assert 0 < report.filter.utilisation <= 1.0

    def test_asic_faster_than_fpga(self):
        workload = make_workload()
        fpga = simulate(workload, FpgaPlatform())
        asic = simulate(workload, AsicPlatform())
        assert asic.runtime_seconds < fpga.runtime_seconds

    def test_runtime_is_slower_engine(self):
        report = simulate(make_workload(), FpgaPlatform())
        assert report.runtime_seconds == max(
            report.filter.makespan_seconds,
            report.extension.makespan_seconds,
        )

    def test_bandwidth_accounting(self):
        report = simulate(make_workload(), FpgaPlatform())
        assert report.filter.bytes_moved == 5000 * 320
        assert report.total_bandwidth_demand > 0
        assert report.bandwidth_fraction == pytest.approx(
            report.total_bandwidth_demand / report.sustained_bandwidth
        )

    def test_fpga_bandwidth_near_paper(self):
        """Paper: BSW filtering streams ~2.1 GB/s on the FPGA."""
        report = simulate(
            make_workload(filter_tiles=50_000, extension_tiles=0,
                          with_traces=False),
            FpgaPlatform(),
        )
        assert 1.5e9 < report.filter.bandwidth_bytes_per_sec < 3e9

    def test_long_streams_scaled(self):
        small = simulate(
            make_workload(filter_tiles=10_000), FpgaPlatform()
        )
        big = simulate(
            make_workload(filter_tiles=1_000_000),
            FpgaPlatform(),
            max_filter_tiles_simulated=10_000,
        )
        assert big.filter.makespan_seconds == pytest.approx(
            100 * small.filter.makespan_seconds, rel=0.01
        )

    def test_workload_without_traces_uses_dense_tiles(self):
        report = simulate(
            make_workload(with_traces=False), FpgaPlatform()
        )
        assert report.extension.makespan_seconds > 0

    def test_empty_workload(self):
        report = simulate(
            Workload(), FpgaPlatform()
        )
        assert report.runtime_seconds == 0.0
        assert not report.dram_bound
