"""FPGA resource model tests."""

import pytest

from repro.hw import (
    VU9P,
    FpgaDevice,
    filter_throughput,
    fits,
    max_bsw_arrays,
    utilisation,
)


class TestFit:
    def test_paper_mapping_fits_vu9p(self):
        """Paper section V-C: 50 BSW + 2 GACT-X arrays of 32 PEs."""
        assert fits(VU9P, 50, 2, n_pe=32)

    def test_paper_mapping_is_maximal(self):
        assert max_bsw_arrays(VU9P, gactx_arrays=2, n_pe=32) == 50

    def test_more_arrays_do_not_fit(self):
        assert not fits(VU9P, 60, 2, n_pe=32)

    def test_fewer_pes_allow_more_arrays(self):
        assert max_bsw_arrays(VU9P, gactx_arrays=2, n_pe=16) > 50

    def test_smaller_device_fits_fewer(self):
        half = FpgaDevice(
            name="half",
            luts=VU9P.luts // 2,
            ffs=VU9P.ffs // 2,
            bram_kb=VU9P.bram_kb // 2,
        )
        assert max_bsw_arrays(half) < 50

    def test_device_validation(self):
        with pytest.raises(ValueError):
            FpgaDevice(name="bad", luts=0, ffs=1, bram_kb=1)


class TestUtilisation:
    def test_fractions_in_range(self):
        lut, ff, bram = utilisation(VU9P, 50, 2)
        assert 0.8 < lut <= 1.0
        assert 0 < ff <= 1.0
        assert 0 < bram <= 1.0

    def test_scales_linearly(self):
        lut1, _, _ = utilisation(VU9P, 10, 0)
        lut2, _, _ = utilisation(VU9P, 20, 0)
        assert lut2 == pytest.approx(2 * lut1)


class TestThroughput:
    def test_vu9p_filter_throughput_near_paper(self):
        arrays, tiles_per_sec = filter_throughput(VU9P)
        assert arrays == 50
        # paper: ~6.25M tiles/s
        assert 5e6 < tiles_per_sec < 7.5e6

    def test_throughput_grows_with_clock(self):
        _, slow = filter_throughput(VU9P, clock_hz=100e6)
        _, fast = filter_throughput(VU9P, clock_hz=200e6)
        assert fast == pytest.approx(2 * slow)
