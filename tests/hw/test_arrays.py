"""BSW and GACT-X array model tests, calibrated against the paper."""

import pytest

from repro.core import TileTrace
from repro.hw import (
    BswArrayModel,
    GactXArrayModel,
    SystolicArrayConfig,
)


class TestBswCalibration:
    def test_fpga_throughput_near_paper(self):
        """Paper: 50 arrays x 32 PEs at 150 MHz deliver 6.25M tiles/s."""
        config = SystolicArrayConfig(n_pe=32, clock_hz=150e6)
        model = BswArrayModel(config=config, tile_size=320, band=32)
        total = model.tiles_per_second() * 50
        assert 5.0e6 < total < 7.5e6

    def test_asic_throughput_near_paper(self):
        """Paper: 64 arrays x 64 PEs at 1 GHz deliver 70M tiles/s."""
        config = SystolicArrayConfig(n_pe=64, clock_hz=1e9)
        model = BswArrayModel(config=config, tile_size=320, band=32)
        total = model.tiles_per_second() * 64
        assert 55e6 < total < 85e6

    def test_cycles_grow_with_tile_size(self):
        config = SystolicArrayConfig(n_pe=32, clock_hz=150e6)
        small = BswArrayModel(config=config, tile_size=160, band=32)
        large = BswArrayModel(config=config, tile_size=320, band=32)
        assert large.tile_cycles() > small.tile_cycles()

    def test_cycles_grow_with_band(self):
        config = SystolicArrayConfig(n_pe=32, clock_hz=150e6)
        narrow = BswArrayModel(config=config, tile_size=320, band=16)
        wide = BswArrayModel(config=config, tile_size=320, band=64)
        assert wide.tile_cycles() > narrow.tile_cycles()

    def test_latency_inverse_of_throughput(self):
        config = SystolicArrayConfig(n_pe=32, clock_hz=150e6)
        model = BswArrayModel(config=config)
        assert model.tile_latency_seconds() == pytest.approx(
            1.0 / model.tiles_per_second()
        )


class TestGactXModel:
    @pytest.fixture
    def model(self):
        return GactXArrayModel(
            config=SystolicArrayConfig(n_pe=32, clock_hz=150e6)
        )

    def make_trace(self, rows=64, width=100):
        return TileTrace(
            rows=rows,
            cells=rows * width,
            row_windows=tuple((1, width) for _ in range(rows)),
        )

    def test_tile_cycles_positive(self, model):
        assert model.tile_cycles(self.make_trace()) > 0

    def test_empty_trace_costs_overhead_only(self, model):
        trace = TileTrace(rows=0, cells=0, row_windows=())
        assert model.tile_cycles(trace) == model.config.tile_overhead

    def test_batch_cycles_additive(self, model):
        traces = [self.make_trace(), self.make_trace(rows=32)]
        assert model.batch_cycles(traces) == sum(
            model.tile_cycles(t) for t in traces
        )

    def test_mean_throughput(self, model):
        traces = [self.make_trace() for _ in range(10)]
        tps = model.mean_tiles_per_second(traces)
        assert tps > 0
        assert model.mean_tiles_per_second([]) == 0.0

    def test_pointer_bytes_four_bits_per_cell(self, model):
        trace = self.make_trace(rows=10, width=100)
        assert model.pointer_bytes(trace) == 10 * 100 // 2

    def test_fits_in_sram(self, model):
        small = self.make_trace(rows=8, width=8)
        assert model.fits_in_sram(small)
        huge = TileTrace(
            rows=4096,
            cells=4096 * 4096,
            row_windows=tuple((1, 4096) for _ in range(4096)),
        )
        assert not model.fits_in_sram(huge)

    def test_peak_pointer_bytes(self, model):
        traces = [self.make_trace(rows=4), self.make_trace(rows=64)]
        assert model.peak_pointer_bytes(traces) == model.pointer_bytes(
            traces[1]
        )
        assert model.peak_pointer_bytes([]) == 0

    def test_wider_windows_cost_more(self, model):
        narrow = self.make_trace(width=50)
        wide = self.make_trace(width=400)
        assert model.tile_cycles(wide) > model.tile_cycles(narrow)
