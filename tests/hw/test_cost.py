"""Cost-model tests: Table V arithmetic on synthetic workloads."""

import pytest

from repro.core import TileTrace, Workload
from repro.hw import CostModel


def synthetic_workload(filter_tiles=10**6, extension_tiles=200):
    traces = [
        TileTrace(
            rows=1920,
            cells=1920 * 300,
            row_windows=tuple((1, 300) for _ in range(1920)),
        )
        for _ in range(min(extension_tiles, 16))
    ]
    return Workload(
        seed_hits=10**5,
        filter_tiles=filter_tiles,
        filter_cells=filter_tiles * 320 * 65,
        extension_tiles=extension_tiles,
        extension_cells=sum(t.cells for t in traces),
        extension_tile_traces=traces,
    )


@pytest.fixture
def model():
    return CostModel.default()


@pytest.fixture
def workload():
    return synthetic_workload()


class TestRuntimes:
    def test_iso_software_runtime_uses_parasail_rate(self, model, workload):
        assert model.iso_software_runtime(workload) == pytest.approx(
            workload.filter_tiles / 225e3
        )

    def test_fpga_much_faster_than_iso_software(self, model, workload):
        iso = model.iso_software_runtime(workload)
        fpga = model.fpga_runtime(workload).total
        assert fpga < iso / 5

    def test_asic_faster_than_fpga(self, model, workload):
        assert (
            model.asic_runtime(workload).total
            < model.fpga_runtime(workload).total
        )

    def test_breakdown_totals(self, model, workload):
        breakdown = model.fpga_runtime(workload)
        assert breakdown.total == pytest.approx(
            breakdown.seeding + breakdown.filtering + breakdown.extension
        )

    def test_asic_excludes_seeding(self, model, workload):
        assert model.asic_runtime(workload).seeding == 0.0

    def test_workload_without_traces_uses_dense_bound(self, model):
        workload = synthetic_workload()
        workload.extension_tile_traces = []
        runtime = model.asic_runtime(workload)
        assert runtime.extension > 0


class TestImprovements:
    def test_fpga_perf_per_dollar_in_paper_range(self, model, workload):
        """Paper Table V: 19-24x performance/$ over iso-sensitive sw."""
        improvement = model.fpga_perf_per_dollar_improvement(workload)
        assert 8 < improvement < 60

    def test_asic_perf_per_watt_in_paper_range(self, model, workload):
        """Paper Table V: ~1,500x performance/W over iso-sensitive sw."""
        improvement = model.asic_perf_per_watt_improvement(workload)
        assert 400 < improvement < 6000

    def test_speedup_vs_lastz(self, model, workload):
        lastz_workload = Workload(
            seed_hits=10**6,
            filter_tiles=10**6,
            filter_cells=10**6 * 1024,
            extension_tiles=200,
        )
        speedup = model.speedup_vs_lastz(workload, lastz_workload)
        assert speedup > 0

    def test_improvement_scales_with_filter_dominance(self, model):
        small = synthetic_workload(filter_tiles=10**4)
        large = synthetic_workload(filter_tiles=10**8)
        # with more filter work, the accelerator advantage saturates to
        # the BSW-array speedup; both must remain large
        assert model.fpga_perf_per_dollar_improvement(large) > 5
        assert model.fpga_perf_per_dollar_improvement(small) > 0
