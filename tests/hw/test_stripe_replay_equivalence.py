"""Stripe-sequencer replay equivalence on wavefront-derived windows.

The GACT-X array model replays the software kernel's per-row
``(j_start, j_stop)`` windows through its stripe sequencer to price a
tile in cycles (Figure 10's throughput axis).  The vectorised wavefront
kernel must therefore emit *byte-identical* windows to the frozen
row-at-a-time oracle — any drift silently changes every modelled cycle
count.  This test regenerates a Figure-10-style workload (Darwin-WGA's
own seeding + gapped filtering on a synthetic species pair), runs every
anchor's tile chain through both kernels, and proves the traces and the
modelled cycle counts are identical.
"""

import pytest

from repro.align import _reference as ref
from repro.core import DarwinWGAConfig, ExtensionParams, gact_x_extend
from repro.core.gact_x import _DirectionStream, _reversed_sequence
from repro.core.gapped_filter import gapped_filter
from repro.hw import GactXArrayModel, SystolicArrayConfig
from repro.hw.systolic import stripes_of
from repro.seed import SeedIndex, dsoft_seed

ARRAY = SystolicArrayConfig(n_pe=64, clock_hz=1e9)
MAX_ANCHORS = 6
PARAMS = ExtensionParams(threshold=1000)


@pytest.fixture(scope="module")
def workload(request):
    """Anchors from the pipeline's own seeding + filtering stages."""
    pair = request.getfixturevalue("small_pair")
    config = DarwinWGAConfig()
    target = pair.target.genome
    query = pair.query.genome
    index = SeedIndex.build(target, config.seed)
    seeding = dsoft_seed(index, query, config.dsoft)
    filtered = gapped_filter(
        target,
        query,
        seeding.target_positions,
        seeding.query_positions,
        config.scoring,
        config.filtering,
    )
    anchors = sorted(filtered.anchors, key=lambda a: -a.filter_score)
    assert anchors, "no anchors survived filtering"
    return target, query, anchors[:MAX_ANCHORS], config.scoring


def _reference_windows(target, query, anchor, scoring, params):
    """Tile windows from the frozen oracle, via the same tile chaining.

    Drives the production :class:`_DirectionStream` state machine (so
    tile origins chain exactly as in ``gact_x_extend``) but computes
    each tile with the row-at-a-time reference kernel.
    """
    right = _DirectionStream(
        target.slice(anchor.target_pos, len(target)),
        query.slice(anchor.query_pos, len(query)),
        params,
    )
    left = _DirectionStream(
        _reversed_sequence(target.slice(0, anchor.target_pos)),
        _reversed_sequence(query.slice(0, anchor.query_pos)),
        params,
    )
    for stream in (right, left):
        while True:
            tile = stream.next_tile()
            if tile is None:
                break
            stream.consume(
                ref.xdrop_extend_reference(
                    tile[0], tile[1], scoring, params.ydrop
                )
            )
    return tuple(left.traces) + tuple(right.traces)


def test_cycle_counts_unchanged_on_wavefront_windows(workload):
    target, query, anchors, scoring = workload
    model = GactXArrayModel(config=ARRAY)
    total_tiles = 0
    for anchor in anchors:
        result = gact_x_extend(target, query, anchor, scoring, PARAMS)
        oracle_tiles = _reference_windows(
            target, query, anchor, scoring, PARAMS
        )
        assert len(result.tiles) == len(oracle_tiles)
        for got, want in zip(result.tiles, oracle_tiles):
            assert got.rows == want.rows
            assert got.cells == want.cells
            assert got.row_windows == want.row_windows
            assert model.tile_cycles(got) == model.tile_cycles(want)
        assert model.batch_cycles(result.tiles) == (
            model.batch_cycles(oracle_tiles)
        )
        total_tiles += len(result.tiles)
    assert total_tiles > 0


def test_stripe_decomposition_identical(workload):
    """The sequencer's stripe plan itself matches, not just its total."""
    target, query, anchors, scoring = workload
    for anchor in anchors:
        result = gact_x_extend(target, query, anchor, scoring, PARAMS)
        oracle_tiles = _reference_windows(
            target, query, anchor, scoring, PARAMS
        )
        for got, want in zip(result.tiles, oracle_tiles):
            assert list(stripes_of(got.row_windows, ARRAY.n_pe)) == (
                list(stripes_of(want.row_windows, ARRAY.n_pe))
            )
