"""End-to-end telemetry bus: real workers, real queue, exact accounting.

The acceptance contract for the cross-process bus, proven on a live
2-worker pool:

* zero dropped / lost / gap events (ack-based drain makes this exact);
* the global funnel equals the sum of the per-worker funnels AND the
  serial run's workload counters;
* telemetry never perturbs results — identical alignments at any
  worker count, with or without the bus;
* worker spans arrive tagged with their unit and worker pid.
"""

import numpy as np
import pytest

from repro.core.pipeline import align_assemblies
from repro.genome import Assembly, Sequence, make_species_pair
from repro.obs import TelemetryOptions, Tracer
from repro.parallel import ExecutionEngine

WORKERS = 2


@pytest.fixture(scope="module")
def assemblies():
    pair = make_species_pair(
        6000, 0.3, np.random.default_rng(11), alignable_fraction=0.5
    )

    def split(genome, prefix):
        half = len(genome.codes) // 2
        return Assembly(
            name=prefix,
            chromosomes=[
                Sequence(genome.codes[:half], name=f"{prefix}1"),
                Sequence(genome.codes[half:], name=f"{prefix}2"),
            ],
        )

    return (
        split(pair.target.genome, "t"),
        split(pair.query.genome, "q"),
    )


@pytest.fixture(scope="module")
def bus_run(assemblies):
    """One traced 2-worker run with the bus on; shared by the tests."""
    target, query = assemblies
    telemetry = TelemetryOptions()
    telemetry.ensure_bus()
    tracer = Tracer()
    with ExecutionEngine(WORKERS, telemetry=telemetry) as engine:
        result = align_assemblies(
            target, query, engine=engine, tracer=tracer, telemetry=telemetry
        )
    summary = telemetry.finish()
    telemetry.close()
    return result, tracer, summary


def alignment_key(result):
    return [
        (
            a.target_name,
            a.query_name,
            a.strand,
            a.target_start,
            a.target_end,
            a.query_start,
            a.query_end,
            a.score,
        )
        for a in result.alignments
    ]


class TestZeroLoss:
    def test_no_dropped_lost_or_gap_events(self, bus_run):
        _, _, summary = bus_run
        bus = summary["bus"]
        assert bus["events"] > 0
        assert bus["dropped_events"] == 0
        assert bus["lost_events"] == 0
        assert bus["gap_events"] == 0
        assert bus["workers"] >= 1

    def test_funnels_balance_exactly(self, bus_run, assemblies):
        """Global funnel == sum of worker funnels == serial workload."""
        result, _, summary = bus_run
        bus = summary["bus"]
        merged = {}
        for counters in bus["worker_funnels"].values():
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        assert merged == bus["funnel"]
        workload = result.workload
        assert bus["funnel"]["seed_hits"] == workload.seed_hits
        assert bus["funnel"]["filter_tiles"] == workload.filter_tiles
        assert bus["funnel"]["anchors"] == workload.anchors


class TestIdenticalOutput:
    def test_bus_run_matches_serial_run(self, bus_run, assemblies):
        target, query = assemblies
        result, _, _ = bus_run
        serial = align_assemblies(target, query, workers=1)
        assert alignment_key(result) == alignment_key(serial)
        assert result.workload == serial.workload

    def test_untraced_telemetry_run_matches_too(self, bus_run, assemblies):
        """Telemetry attached but tracer off: no bus, same output."""
        target, query = assemblies
        result, _, _ = bus_run
        telemetry = TelemetryOptions()
        with ExecutionEngine(WORKERS, telemetry=telemetry) as engine:
            untraced = align_assemblies(
                target, query, engine=engine, telemetry=telemetry
            )
        assert telemetry.bus is None
        assert alignment_key(untraced) == alignment_key(result)


class TestWorkerSpans:
    def test_worker_spans_grafted_with_unit_and_pid(self, bus_run):
        _, tracer, _ = bus_run
        tagged = [
            span
            for root in tracer.roots
            for span in root.walk()
            if "worker" in span.attrs
        ]
        assert tagged, "no worker spans were streamed over the bus"
        units = {span.attrs["unit"] for span in tagged}
        assert len(units) == 4  # 2 target x 2 query chromosomes
        for span in tagged:
            assert span.attrs["worker"] > 0
            assert span.closed

    def test_registry_metrics_recorded(self, bus_run):
        _, _, summary = bus_run
        metrics = summary["metrics"]
        assert metrics["queue_depth"]["count"] > 0
        assert metrics["dispatch_latency_seconds"]["count"] > 0
        assert "idle_tail_seconds" in metrics


class TestAdoptTelemetry:
    def test_engine_adopts_before_pool_build(self):
        telemetry = TelemetryOptions()
        engine = ExecutionEngine(WORKERS)
        try:
            assert engine.adopt_telemetry(telemetry) is True
            assert engine.telemetry is telemetry
            assert engine.adopt_telemetry(telemetry) is True  # idempotent
        finally:
            engine.close()

    def test_engine_refuses_after_pool_build(self, assemblies):
        """Workers are initialized without a publisher; adopting a bus
        afterwards would silently lose every event."""
        target, query = assemblies
        engine = ExecutionEngine(WORKERS)
        try:
            align_assemblies(target, query, engine=engine)  # builds pool
            late = TelemetryOptions()
            late.ensure_bus()
            assert engine.adopt_telemetry(late) is False
            assert engine.telemetry is None
            late.close()
        finally:
            engine.close()

    def test_engine_refuses_second_bundle(self):
        first = TelemetryOptions()
        second = TelemetryOptions()
        engine = ExecutionEngine(WORKERS, telemetry=first)
        try:
            assert engine.adopt_telemetry(second) is False
            assert engine.telemetry is first
        finally:
            engine.close()
