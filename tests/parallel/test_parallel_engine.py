"""Determinism and mechanics of the parallel execution engine."""

from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.core import DarwinWGA
from repro.core.pipeline import align_assemblies
from repro.genome import Assembly, Sequence, make_species_pair, markov_genome
from repro.lastz import LastzAligner
from repro.obs import Tracer, run_report
from repro.parallel import ExecutionEngine, resolve_sequence

WORKLOAD_FIELDS = (
    "seed_hits",
    "filter_tiles",
    "filter_cells",
    "extension_tiles",
    "extension_cells",
    "anchors",
    "absorbed_anchors",
)


def assert_same_result(serial, parallel):
    assert parallel.alignments == serial.alignments
    for field in WORKLOAD_FIELDS:
        assert getattr(parallel.workload, field) == getattr(
            serial.workload, field
        ), field


class TestEngine:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExecutionEngine(0)

    def test_single_worker_is_inactive(self):
        with ExecutionEngine(1) as engine:
            assert not engine.active

    def test_share_roundtrip_and_dedup(self, rng):
        seq = markov_genome(1000, rng)
        with ExecutionEngine(2) as engine:
            handle = engine.share(seq)
            assert engine.share(seq) is handle
            restored = resolve_sequence(handle)
            np.testing.assert_array_equal(restored.codes, seq.codes)
            assert restored.name == seq.name

    def test_batch_sizing(self):
        with ExecutionEngine(4) as engine:
            assert engine.batch_size_for(320) == 10
            assert engine.batch_size_for(100_000) == 32
            assert engine.batch_size_for(100_000, chunk_size=7) == 7

    def test_batch_sizing_floors_small_inputs(self):
        # Small inputs must not degenerate into per-anchor round trips:
        # aim for min(items, workers) balanced batches instead.
        with ExecutionEngine(4) as engine:
            assert engine.batch_size_for(10) == 3  # 4 batches of <=3
            assert engine.batch_size_for(4) == 1  # one anchor per worker
            assert engine.batch_size_for(3) == 1
            assert engine.batch_size_for(1) == 1
            assert engine.batch_size_for(0) == 1
        with ExecutionEngine(8) as engine:
            assert engine.batch_size_for(20) == 3  # ceil(20/8), 7 batches

    def test_share_holds_strong_reference(self, rng):
        # Dedup is by id(); the engine must pin the sequence so a
        # garbage-collected id cannot be recycled onto a new object and
        # silently alias the old shared-memory block.
        seq = markov_genome(500, rng)
        with ExecutionEngine(2) as engine:
            handle = engine.share(seq)
            entry = engine._shared[id(seq)]
            assert entry[0] is seq
            assert entry[1] is handle

    def test_rebuild_replaces_broken_pool(self):
        from repro.resilience import injected_worker_crash

        with ExecutionEngine(2) as engine:
            future = engine.submit(injected_worker_crash)
            with pytest.raises(BrokenProcessPool):
                future.result()
            engine.rebuild()
            assert engine.submit(int, "7").result() == 7

    def test_release_blocks_is_idempotent(self, rng):
        engine = ExecutionEngine(2)
        engine.share(markov_genome(500, rng))
        assert engine._blocks
        engine.release_blocks()
        assert not engine._blocks and not engine._shared
        engine.release_blocks()
        engine.close()

    def test_closed_engine_rejects_work(self):
        engine = ExecutionEngine(2)
        engine.close()
        assert not engine.active
        with pytest.raises(RuntimeError):
            engine.submit(len, ())
        with pytest.raises(RuntimeError):
            engine.rebuild()


class TestAnchorParallelism:
    """Per-anchor fan-out is byte-identical to serial at any width."""

    @pytest.mark.parametrize("distance", [0.2, 0.8])
    def test_darwin_matches_serial(self, distance):
        pair = make_species_pair(
            8000, distance, np.random.default_rng(31)
        )
        target, query = pair.target.genome, pair.query.genome
        serial = DarwinWGA().align(target, query)
        with DarwinWGA(workers=3) as aligner:
            parallel = aligner.align(target, query)
        assert_same_result(serial, parallel)
        assert (
            parallel.workload.extension_tile_traces
            == serial.workload.extension_tile_traces
        )

    def test_lastz_matches_serial(self, small_pair):
        target = small_pair.target.genome
        query = small_pair.query.genome
        serial = LastzAligner().align(target, query)
        with LastzAligner(workers=3) as aligner:
            parallel = aligner.align(target, query)
        assert_same_result(serial, parallel)

    def test_traced_run_funnel_balances(self, small_pair):
        target = small_pair.target.genome
        query = small_pair.query.genome
        tracer = Tracer()
        with DarwinWGA(tracer=tracer, workers=3) as aligner:
            result = aligner.align(target, query)
        report = run_report(tracer, result=result)
        stages = report["stages"]
        funnel = report["funnel"]
        # Exactly one grafted extend_anchor span per surviving anchor,
        # and the merged counters agree with the Workload accounting.
        assert (
            stages["extend_anchor"]["count"] == funnel["anchors_extended"]
        )
        assert (
            stages["extend_anchor"]["counters"]["extension_cells"]
            == report["workload"]["extension_cells"]
        )
        assert (
            stages["extend"]["counters"]["extension_tiles"]
            == report["workload"]["extension_tiles"]
        )


class TestAssemblyParallelism:
    @pytest.fixture(scope="class")
    def assembly_pair(self):
        rng = np.random.default_rng(77)
        pair = make_species_pair(16000, 0.4, rng)
        t, q = pair.target.genome, pair.query.genome
        target = Assembly(
            name="target",
            chromosomes=[
                Sequence(t.codes[:8000], name="t_chr1"),
                Sequence(t.codes[8000:], name="t_chr2"),
            ],
        )
        query = Assembly(
            name="query",
            chromosomes=[
                Sequence(q.codes[8000:], name="q_chr2"),
                Sequence(q.codes[:8000], name="q_chr1"),
            ],
        )
        return target, query

    @pytest.mark.parametrize("distance", [0.2, 0.8])
    def test_workers_match_serial_at_two_divergences(self, distance):
        rng = np.random.default_rng(int(distance * 100))
        pair = make_species_pair(12000, distance, rng)
        t, q = pair.target.genome, pair.query.genome
        target = Assembly(
            name="t",
            chromosomes=[
                Sequence(t.codes[:6000], name="t1"),
                Sequence(t.codes[6000:], name="t2"),
            ],
        )
        query = Assembly(
            name="q",
            chromosomes=[
                Sequence(q.codes[:6000], name="q1"),
                Sequence(q.codes[6000:], name="q2"),
            ],
        )
        serial = align_assemblies(target, query)
        parallel = align_assemblies(target, query, workers=4)
        assert_same_result(serial, parallel)

    def test_index_cache_warms_and_hits(self, assembly_pair, tmp_path):
        from repro.seed import SeedIndexCache

        target, query = assembly_pair
        serial = align_assemblies(target, query)
        cache = SeedIndexCache(tmp_path)
        parallel = align_assemblies(
            target, query, workers=2, index_cache=cache
        )
        assert_same_result(serial, parallel)
        # One miss per target chromosome during the warm-up; worker-side
        # hits are counted in the workers, not this process.
        assert cache.misses == len(target.chromosomes)

    def test_traced_assembly_run_balances(self, assembly_pair):
        target, query = assembly_pair
        tracer = Tracer()
        result = align_assemblies(
            target, query, workers=2, tracer=tracer
        )
        report = run_report(tracer, result=result)
        stages = report["stages"]
        pairs = len(target.chromosomes) * len(query.chromosomes)
        assert stages["align"]["count"] == pairs
        assert (
            stages["align"]["counters"]["extension_cells"]
            == report["workload"]["extension_cells"]
        )
