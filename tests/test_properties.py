"""Cross-module property-based tests (hypothesis).

These exercise invariants that hold regardless of input: DP kernel
relationships, liftover consistency, chain accounting, tiling-path
bookkeeping, and encoding round trips at the subsystem boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    Alignment,
    Cigar,
    best_score,
    bsw_tile,
    global_score,
    unit,
    xdrop_extend,
)
from repro.chain import LiftOver, build_chains, build_net
from repro.core import truncate_cigar
from repro.genome import Sequence

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
run_lists = st.lists(
    st.tuples(st.sampled_from("=XID"), st.integers(1, 20)),
    min_size=1,
    max_size=12,
)


def scoring():
    return unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)


class TestKernelRelations:
    @settings(max_examples=40, deadline=None)
    @given(dna, dna)
    def test_local_dominates_global(self, t_text, q_text):
        """A local alignment score is never below the global score."""
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        assert best_score(t, q, scoring()) >= global_score(t, q, scoring())

    @settings(max_examples=40, deadline=None)
    @given(dna, dna, st.integers(0, 10))
    def test_banded_never_exceeds_full(self, t_text, q_text, band):
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        assert (
            bsw_tile(t, q, scoring(), band).score
            <= best_score(t, q, scoring())
        )

    @settings(max_examples=40, deadline=None)
    @given(dna, dna)
    def test_xdrop_never_exceeds_local(self, t_text, q_text):
        """Extension (anchored at the origin) cannot beat free local."""
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        result = xdrop_extend(t, q, scoring(), ydrop=10**9)
        assert result.score <= best_score(t, q, scoring())

    @settings(max_examples=30, deadline=None)
    @given(dna)
    def test_self_extension_is_perfect(self, text):
        s = Sequence.from_string(text)
        result = xdrop_extend(s, s, scoring(), ydrop=10**9)
        assert result.score == 5 * len(text)
        assert str(result.cigar) == f"{len(text)}="


class TestTruncateCigar:
    @settings(max_examples=60, deadline=None)
    @given(run_lists, st.integers(0, 50))
    def test_truncation_respects_boundary(self, runs, boundary):
        cigar = Cigar.from_runs(runs)
        piece, i, j = truncate_cigar(cigar, boundary)
        assert i <= boundary
        assert j <= boundary
        assert piece.query_span == i
        assert piece.target_span == j

    @settings(max_examples=40, deadline=None)
    @given(run_lists)
    def test_huge_boundary_is_identity(self, runs):
        cigar = Cigar.from_runs(runs)
        piece, i, j = truncate_cigar(cigar, 10**6)
        assert piece == cigar
        assert i == cigar.query_span
        assert j == cigar.target_span

    @settings(max_examples=40, deadline=None)
    @given(run_lists, st.integers(0, 50))
    def test_truncation_is_a_prefix(self, runs, boundary):
        cigar = Cigar.from_runs(runs)
        piece, _, _ = truncate_cigar(cigar, boundary)
        # every truncated path is a prefix of the original op stream
        full_ops = "".join(op * n for op, n in cigar)
        piece_ops = "".join(op * n for op, n in piece)
        assert full_ops.startswith(piece_ops)


class TestLiftoverProperties:
    @settings(max_examples=40, deadline=None)
    @given(run_lists)
    def test_mapped_positions_are_strictly_increasing(self, runs):
        cigar = Cigar.from_runs(runs)
        if cigar.aligned_pairs == 0:
            return
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=cigar.target_span,
            query_start=0,
            query_end=cigar.query_span,
            score=1000,
            cigar=cigar,
        )
        chains = build_chains([alignment])
        lift = LiftOver(chains[0])
        images = [
            lift.map_position(t)
            for t in range(cigar.target_span)
            if lift.map_position(t) is not None
        ]
        assert images == sorted(images)
        assert len(images) == len(set(images))
        assert len(images) == cigar.aligned_pairs


class TestChainProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5000),
                st.integers(0, 5000),
                st.integers(10, 200),
                st.integers(100, 10_000),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_every_block_appears_exactly_once(self, specs):
        blocks = [
            Alignment(
                target_name="t",
                query_name="q",
                target_start=ts,
                target_end=ts + ln,
                query_start=qs,
                query_end=qs + ln,
                score=sc,
                cigar=Cigar.from_runs([("=", ln)]),
            )
            for ts, qs, ln, sc in specs
        ]
        chains = build_chains(blocks)
        used = [b for c in chains for b in c.blocks]
        assert sorted(id(b) for b in used) == sorted(id(b) for b in blocks)
        for chain in chains:
            for a, b in zip(chain.blocks, chain.blocks[1:]):
                assert a.target_end <= b.target_start
                assert a.query_end <= b.query_start

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3000),
                st.integers(10, 400),
                st.integers(100, 50_000),
            ),
            min_size=0,
            max_size=8,
        )
    )
    def test_net_entries_never_overlap_per_level(self, specs):
        blocks = [
            Alignment(
                target_name="t",
                query_name="q",
                target_start=ts,
                target_end=ts + ln,
                query_start=ts,
                query_end=ts + ln,
                score=sc,
                cigar=Cigar.from_runs([("=", ln)]),
            )
            for ts, ln, sc in specs
        ]
        chains = build_chains(blocks)
        net = build_net(chains, target_length=5000)
        top = sorted(
            ((e.target_start, e.target_end) for e in net.entries)
        )
        for (s1, e1), (s2, e2) in zip(top, top[1:]):
            assert e1 <= s2
