"""GACT baseline tests (Figure 10 comparator)."""

import numpy as np
import pytest

from repro.align import AnchorHit
from repro.align.matrices import lastz_default
from repro.core import (
    ExtensionParams,
    GactParams,
    gact_extend,
    gact_x_extend,
    tile_size_for_memory,
)
from repro.genome import Sequence


@pytest.fixture
def scoring():
    return lastz_default()


class TestTileSizing:
    def test_paper_memory_points(self):
        # 4-bit pointers: T = sqrt(2 * bytes)
        assert tile_size_for_memory(512 * 1024) == 1024
        assert tile_size_for_memory(2 * 1024 * 1024) == 2048
        assert tile_size_for_memory(1024 * 1024) == 1448

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            tile_size_for_memory(0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GactParams(tile_size=0)
        with pytest.raises(ValueError):
            GactParams(tile_size=10, overlap=10)


class TestGactExtension:
    def test_clean_segment_aligned_like_gact_x(self, scoring, rng):
        core = rng.integers(0, 4, 600).astype(np.uint8)
        pad = rng.integers(0, 4, 300).astype(np.uint8)
        pad2 = rng.integers(0, 4, 300).astype(np.uint8)
        target = Sequence(np.concatenate([pad, core, pad2]), "t")
        query = Sequence(np.concatenate([pad2, core, pad]), "q")
        anchor = AnchorHit(300 + 300, 300 + 300, 5000)
        gact_params = GactParams(tile_size=256, overlap=32, threshold=1000)
        gactx_params = ExtensionParams(
            tile_size=256, overlap=32, ydrop=9430, threshold=1000
        )
        gact_result = gact_extend(target, query, anchor, scoring, gact_params)
        gactx_result = gact_x_extend(
            target, query, anchor, scoring, gactx_params
        )
        assert gact_result.alignment is not None
        assert gactx_result.alignment is not None
        assert (
            abs(gact_result.alignment.matches - gactx_result.alignment.matches)
            <= 30
        )
        gact_result.alignment.verify(target, query)

    def test_gact_computes_full_tiles(self, scoring, rng):
        core = rng.integers(0, 4, 500).astype(np.uint8)
        target = Sequence(core, "t")
        query = Sequence(core.copy(), "q")
        anchor = AnchorHit(0, 0, 5000)
        params = GactParams(tile_size=128, overlap=16, threshold=100)
        result = gact_extend(target, query, anchor, scoring, params)
        # every trace covers the full tile area
        for trace in result.tiles:
            assert trace.cells == trace.rows * trace.rows or trace.cells > 0

    def test_gact_costs_more_cells_than_gact_x(self, scoring, rng):
        core = rng.integers(0, 4, 800).astype(np.uint8)
        target = Sequence(core, "t")
        query = Sequence(core.copy(), "q")
        anchor = AnchorHit(400, 400, 5000)
        gact_result = gact_extend(
            target, query, anchor, scoring,
            GactParams(tile_size=256, overlap=32, threshold=100),
        )
        gactx_result = gact_x_extend(
            target, query, anchor, scoring,
            ExtensionParams(tile_size=256, overlap=32, ydrop=9430, threshold=100),
        )
        assert gact_result.cells > gactx_result.cells

    def test_gact_terminates_at_long_gap(self, scoring, rng):
        # Gap of 600bp inside a 256-tile: the local-scored tile path
        # disconnects from the origin and GACT stops early.
        core = rng.integers(0, 4, 2000).astype(np.uint8)
        target = Sequence(core, "t")
        query = Sequence(np.delete(core, slice(500, 1100)), "q")
        anchor = AnchorHit(100, 100, 5000)
        params = GactParams(tile_size=256, overlap=32, threshold=100)
        result = gact_extend(target, query, anchor, scoring, params)
        assert result.alignment is not None
        assert result.alignment.target_end <= 600

    def test_threshold_rejects(self, scoring, rng):
        core = rng.integers(0, 4, 300).astype(np.uint8)
        target = Sequence(core, "t")
        query = Sequence(core.copy(), "q")
        anchor = AnchorHit(150, 150, 5000)
        params = GactParams(tile_size=128, overlap=16, threshold=10**7)
        assert gact_extend(target, query, anchor, scoring, params).alignment is None
