"""Gapped (banded SW) filter stage tests."""

import numpy as np
import pytest

from repro.align.matrices import lastz_default
from repro.core import FilterParams, gapped_filter
from repro.genome import Sequence


@pytest.fixture
def scoring():
    return lastz_default()


def planted_pair(rng, length=4000, insert_at=1500, insert_len=400):
    """Random target/query sharing one planted identical segment."""
    target = Sequence(rng.integers(0, 4, length).astype(np.uint8), "t")
    q_codes = rng.integers(0, 4, length).astype(np.uint8)
    q_at = insert_at + 37
    q_codes[q_at : q_at + insert_len] = target.codes[
        insert_at : insert_at + insert_len
    ]
    return target, Sequence(q_codes, "q"), insert_at, q_at


class TestFilter:
    def test_planted_hit_passes(self, scoring, rng):
        target, query, t_at, q_at = planted_pair(rng)
        params = FilterParams(tile_size=320, band=32, threshold=4000)
        result = gapped_filter(
            target,
            query,
            np.array([t_at + 200]),
            np.array([q_at + 200]),
            scoring,
            params,
        )
        assert len(result.anchors) == 1
        anchor = result.anchors[0]
        # anchor must land on the planted diagonal
        assert abs(anchor.diagonal - (t_at - q_at)) <= 32
        assert anchor.filter_score >= 4000

    def test_random_hit_fails(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 2000).astype(np.uint8), "t")
        query = Sequence(rng.integers(0, 4, 2000).astype(np.uint8), "q")
        params = FilterParams(tile_size=320, band=32, threshold=4000)
        result = gapped_filter(
            target,
            query,
            np.array([800, 1200]),
            np.array([900, 700]),
            scoring,
            params,
        )
        assert result.anchors == []
        assert result.tiles == 2

    def test_threshold_controls_pass_rate(self, scoring, rng):
        target, query, t_at, q_at = planted_pair(rng, insert_len=60)
        candidates_t = np.array([t_at + 30])
        candidates_q = np.array([q_at + 30])
        lenient = gapped_filter(
            target, query, candidates_t, candidates_q, scoring,
            FilterParams(threshold=2000),
        )
        strict = gapped_filter(
            target, query, candidates_t, candidates_q, scoring,
            FilterParams(threshold=20000),
        )
        assert len(lenient.anchors) >= len(strict.anchors)

    def test_edge_tiles_are_n_padded(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 500).astype(np.uint8), "t")
        query = Sequence(target.codes.copy(), "q")
        params = FilterParams(tile_size=320, band=32, threshold=1000)
        result = gapped_filter(
            target, query, np.array([5]), np.array([5]), scoring, params
        )
        # tile extends past the left edge; must not crash and should pass
        assert len(result.anchors) == 1

    def test_empty_candidates(self, scoring, rng):
        target = Sequence(rng.integers(0, 4, 100).astype(np.uint8))
        result = gapped_filter(
            target,
            target,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            scoring,
            FilterParams(),
        )
        assert result.tiles == 0
        assert result.cells == 0

    def test_cells_accounting(self, scoring, rng):
        target, query, t_at, q_at = planted_pair(rng)
        params = FilterParams(tile_size=64, band=8)
        result = gapped_filter(
            target,
            query,
            np.array([t_at, t_at + 50]),
            np.array([q_at, q_at + 50]),
            scoring,
            params,
        )
        assert result.tiles == 2
        assert result.cells > 0
        assert result.cells % 2 == 0

    def test_gapped_filter_tolerates_indels(self, scoring, rng):
        # Segment with an indel every ~25 bp: ungapped score per block is
        # far below threshold, but banded SW accumulates across gaps.
        target_core = rng.integers(0, 4, 300).astype(np.uint8)
        query_parts = []
        for start in range(0, 300, 25):
            query_parts.append(target_core[start : start + 25])
            query_parts.append(
                rng.integers(0, 4, 1).astype(np.uint8)
            )  # 1bp insertion
        q_core = np.concatenate(query_parts)
        pad_t = rng.integers(0, 4, 500).astype(np.uint8)
        pad_q = rng.integers(0, 4, 500).astype(np.uint8)
        target = Sequence(
            np.concatenate([pad_t, target_core, pad_t]), "t"
        )
        query = Sequence(np.concatenate([pad_q, q_core, pad_q]), "q")
        params = FilterParams(tile_size=320, band=32, threshold=4000)
        result = gapped_filter(
            target,
            query,
            np.array([500 + 150]),
            np.array([500 + 155]),
            scoring,
            params,
        )
        assert len(result.anchors) == 1
