"""Coverage-grid (anchor absorption) tests."""

import pytest

from repro.align import Alignment, AnchorHit, Cigar
from repro.core import CoverageGrid


def diagonal_alignment(t_start, q_start, length, strand=1):
    return Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + length,
        query_start=q_start,
        query_end=q_start + length,
        score=length,
        cigar=Cigar.from_runs([("=", length)]),
        strand=strand,
    )


class TestCoverageGrid:
    def test_anchor_on_path_absorbed(self):
        grid = CoverageGrid(granularity=64)
        grid.add_alignment(diagonal_alignment(1000, 2000, 500))
        assert grid.absorbs(AnchorHit(1250, 2250, 100))

    def test_anchor_near_path_absorbed(self):
        # Filter anchors sit up to a band-width off the path; the grid
        # dilates by one cell.
        grid = CoverageGrid(granularity=64)
        grid.add_alignment(diagonal_alignment(1000, 2000, 500))
        assert grid.absorbs(AnchorHit(1250, 2250 + 60, 100))

    def test_distant_anchor_not_absorbed(self):
        grid = CoverageGrid(granularity=64)
        grid.add_alignment(diagonal_alignment(1000, 2000, 500))
        assert not grid.absorbs(AnchorHit(5000, 9000, 100))

    def test_strand_separation(self):
        grid = CoverageGrid(granularity=64)
        grid.add_alignment(diagonal_alignment(1000, 2000, 500, strand=1))
        assert not grid.absorbs(AnchorHit(1250, 2250, 100, strand=-1))

    def test_gapped_path_covered(self):
        cigar = Cigar.parse("200=300D200=")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=700,
            query_start=0,
            query_end=400,
            score=1,
            cigar=cigar,
        )
        grid = CoverageGrid(granularity=64)
        grid.add_alignment(alignment)
        # point after the deletion, on the path
        assert grid.absorbs(AnchorHit(600, 300, 1))

    def test_off_path_inside_bounding_box_not_absorbed(self):
        grid = CoverageGrid(granularity=32)
        grid.add_alignment(diagonal_alignment(0, 0, 2000))
        # far off the diagonal but inside the bounding box
        assert not grid.absorbs(AnchorHit(1900, 100, 1))

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            CoverageGrid(granularity=0)

    def test_len_grows(self):
        grid = CoverageGrid(granularity=64)
        assert len(grid) == 0
        grid.add_alignment(diagonal_alignment(0, 0, 300))
        assert len(grid) > 0
