"""Report-rendering tests."""

import pytest

from repro.align import Alignment, Cigar
from repro.chain import build_chains
from repro.core import (
    DarwinWGA,
    alignment_detail,
    chain_table,
    dotplot,
    workload_summary,
)
from repro.genome import Sequence


def simple_alignment(strand=1):
    return Alignment(
        target_name="t",
        query_name="q",
        target_start=2,
        target_end=8,
        query_start=0,
        query_end=6,
        score=42,
        cigar=Cigar.parse("3=1X2="),
        strand=strand,
    )


class TestWorkloadSummary:
    def test_summary_fields(self, small_pair):
        result = DarwinWGA().align(
            small_pair.target.genome, small_pair.query.genome
        )
        text = workload_summary(result)
        assert "seed hits" in text
        assert "filter tiles" in text
        assert "matched base pairs" in text


class TestChainTable:
    def test_table_renders(self, small_pair):
        result = DarwinWGA().align(
            small_pair.target.genome, small_pair.query.genome
        )
        chains = build_chains(result.alignments)
        text = chain_table(chains)
        assert "score" in text
        assert len(text.splitlines()) >= 3

    def test_limit(self):
        alignments = [simple_alignment()]
        chains = build_chains(alignments)
        text = chain_table(chains, limit=0)
        assert len(text.splitlines()) == 2  # header + rule only


class TestAlignmentDetail:
    def test_renders_three_line_blocks(self):
        target = Sequence.from_string("TTACGACG", "t")
        query = Sequence.from_string("ACGTCG", "q")
        text = alignment_detail(simple_alignment(), target, query)
        lines = text.splitlines()
        assert lines[0].startswith("score=42")
        t_row = next(l for l in lines if l.startswith("T "))
        q_row = next(l for l in lines if l.startswith("Q "))
        assert t_row[2:] == "ACGACG"
        assert q_row[2:] == "ACGTCG"

    def test_gap_rendering(self):
        target = Sequence.from_string("ACGT", "t")
        query = Sequence.from_string("AGT", "q")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=4,
            query_start=0,
            query_end=3,
            score=1,
            cigar=Cigar.parse("1=1D2="),
        )
        text = alignment_detail(alignment, target, query)
        assert "-" in text


class TestDotplot:
    def test_forward_diagonal(self):
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=100,
            query_start=0,
            query_end=100,
            score=1,
            cigar=Cigar.from_runs([("=", 100)]),
        )
        plot = dotplot([alignment], 100, 100, size=10)
        lines = plot.splitlines()
        assert len(lines) == 10
        # main diagonal marked
        assert all(lines[i][i] == "+" for i in range(10))

    def test_strand_symbols(self):
        alignment = simple_alignment(strand=-1)
        plot = dotplot([alignment], 10, 10, size=5)
        assert "-" in plot

    def test_size_validation(self):
        with pytest.raises(ValueError):
            dotplot([], 10, 10, size=1)

    def test_empty_alignments(self):
        plot = dotplot([], 10, 10, size=4)
        assert set(plot) <= {".", "\n"}
