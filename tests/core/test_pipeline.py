"""Darwin-WGA pipeline integration tests."""

import numpy as np
import pytest

from repro.core import DarwinWGA, DarwinWGAConfig, ExtensionParams, FilterParams
from repro.genome import make_species_pair


@pytest.fixture(scope="module")
def aligned_result(small_pair):
    aligner = DarwinWGA()
    return aligner.align(
        small_pair.target.genome, small_pair.query.genome
    )


class TestPipeline:
    def test_produces_alignments(self, aligned_result):
        assert len(aligned_result.alignments) > 0

    def test_alignments_verify(self, small_pair, aligned_result):
        for alignment in aligned_result.alignments:
            alignment.verify(
                small_pair.target.genome, small_pair.query.genome
            )

    def test_alignments_sorted_by_score(self, aligned_result):
        scores = [a.score for a in aligned_result.alignments]
        assert scores == sorted(scores, reverse=True)

    def test_no_duplicate_spans(self, aligned_result):
        spans = [
            (a.target_start, a.target_end, a.query_start, a.query_end, a.strand)
            for a in aligned_result.alignments
        ]
        assert len(spans) == len(set(spans))

    def test_scores_meet_threshold(self, aligned_result):
        threshold = DarwinWGAConfig().extension.threshold
        assert all(
            a.score >= threshold for a in aligned_result.alignments
        )

    def test_workload_counters_populated(self, aligned_result):
        workload = aligned_result.workload
        assert workload.seed_hits > 0
        assert workload.filter_tiles > 0
        assert workload.filter_cells > 0
        assert workload.extension_tiles > 0
        assert len(workload.extension_tile_traces) == workload.extension_tiles

    def test_total_matches_positive(self, aligned_result):
        assert aligned_result.total_matches > 0


class TestStrandHandling:
    def test_inversion_found_on_minus_strand(self):
        rng = np.random.default_rng(31)
        pair = make_species_pair(
            15000,
            0.1,
            rng,
            inversion_count=2,
            indel_per_substitution=0.0,
        )
        result = DarwinWGA().align(
            pair.target.genome, pair.query.genome
        )
        strands = {a.strand for a in result.alignments}
        assert -1 in strands and 1 in strands

    def test_plus_only_mode(self, small_pair):
        config = DarwinWGAConfig(both_strands=False)
        result = DarwinWGA(config).align(
            small_pair.target.genome, small_pair.query.genome
        )
        assert all(a.strand == 1 for a in result.alignments)


class TestConfig:
    def test_scaled_config(self):
        config = DarwinWGAConfig().scaled(0.5)
        assert config.filtering.tile_size == 160
        assert config.extension.tile_size == 960
        assert config.filtering.threshold == 2000

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DarwinWGAConfig().scaled(0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            FilterParams(tile_size=0)
        with pytest.raises(ValueError):
            ExtensionParams(overlap=2000, tile_size=100)
        with pytest.raises(ValueError):
            ExtensionParams(ydrop=-5)

    def test_identical_genomes_align_fully(self, rng):
        from repro.genome.synthesis import markov_genome

        genome = markov_genome(6000, rng, name="g")
        result = DarwinWGA().align(genome, genome)
        best = result.alignments[0]
        assert best.matches >= len(genome) * 0.98
