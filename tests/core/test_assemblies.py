"""Whole-assembly alignment tests."""

import numpy as np
import pytest

from repro.chain import build_chains
from repro.core import align_assemblies
from repro.genome import Assembly, Sequence
from repro.genome.synthesis import markov_genome
from repro.lastz import LastzAligner


@pytest.fixture(scope="module")
def assembly_pair():
    rng = np.random.default_rng(77)
    genome = markov_genome(16000, rng, name="anc")
    # two "chromosomes" per species, sharing content pairwise
    target = Assembly(
        name="asmT",
        chromosomes=[
            Sequence(genome.codes[:8000], name="chr1"),
            Sequence(genome.codes[8000:], name="chr2"),
        ],
    )
    # query chromosomes swap order so cross-chromosome homology exists
    query = Assembly(
        name="asmQ",
        chromosomes=[
            Sequence(genome.codes[8000:], name="chrA"),
            Sequence(genome.codes[:8000], name="chrB"),
        ],
    )
    return target, query


class TestAlignAssemblies:
    def test_all_chromosome_pairs_aligned(self, assembly_pair):
        target, query = assembly_pair
        result = align_assemblies(target, query)
        pairs = {
            (a.target_name, a.query_name) for a in result.alignments
        }
        assert ("chr1", "chrB") in pairs
        assert ("chr2", "chrA") in pairs

    def test_chains_partition_by_chromosome(self, assembly_pair):
        target, query = assembly_pair
        result = align_assemblies(target, query)
        chains = build_chains(result.alignments)
        for chain in chains:
            names = {
                (b.target_name, b.query_name) for b in chain.blocks
            }
            assert len(names) == 1

    def test_workload_accumulates(self, assembly_pair):
        target, query = assembly_pair
        result = align_assemblies(target, query)
        assert result.workload.filter_tiles > 0
        assert result.workload.seed_hits > 0

    def test_lastz_aligner_class(self, assembly_pair):
        target, query = assembly_pair
        result = align_assemblies(
            target, query, aligner_class=LastzAligner
        )
        assert result.alignments

    def test_matches_cover_shared_content(self, assembly_pair):
        target, query = assembly_pair
        result = align_assemblies(target, query)
        assert result.total_matches > 15000
