"""Streaming dataflow: bounded queues, backpressure, byte-identity.

The streaming contract has three legs, each pinned here:

1. **boundedness** — every stage buffer has a hard capacity, the
   in-flight watermark really limits speculation, and a slow consumer
   (injected ``stall`` faults) holds producers back instead of growing
   a queue;
2. **byte-identity** — the streamed schedule commits exactly the serial
   result at any worker count, under any fault schedule, and across
   checkpoint/resume;
3. **observability** — occupancy, idle tail, queue depth and
   backpressure counters land in the metric registry and on the
   ``extend`` span.
"""

import numpy as np
import pytest

from repro.core import DarwinWGA
from repro.core.pipeline import align_assemblies
from repro.core.stream import BoundedQueue, StreamParams
from repro.core import stream as stream_module
from repro.genome import Assembly, Sequence, make_species_pair
from repro.lastz import LastzAligner
from repro.obs import TelemetryOptions, Tracer
from repro.resilience import (
    FaultPlan,
    ResilienceOptions,
    RetryPolicy,
    RunManifest,
)

WORKLOAD_FIELDS = (
    "seed_hits",
    "filter_tiles",
    "filter_cells",
    "extension_tiles",
    "extension_cells",
    "anchors",
    "absorbed_anchors",
)


def assert_same_result(serial, streamed):
    assert streamed.alignments == serial.alignments
    for field in WORKLOAD_FIELDS:
        assert getattr(streamed.workload, field) == getattr(
            serial.workload, field
        ), field
    assert len(streamed.workload.extension_tile_traces) == len(
        serial.workload.extension_tile_traces
    )


@pytest.fixture(scope="module")
def pair():
    p = make_species_pair(8000, 0.9, np.random.default_rng(7), exon_count=6)
    return p.target.genome, p.query.genome


@pytest.fixture(scope="module")
def serial_darwin(pair):
    return DarwinWGA().align(*pair)


@pytest.fixture(scope="module")
def serial_lastz(pair):
    return LastzAligner().align(*pair)


class TestBoundedQueue:
    def test_capacity_is_enforced(self):
        queue = BoundedQueue("q", capacity=2)
        assert queue.offer("a")
        assert queue.offer("b")
        assert queue.full
        assert not queue.offer("c")
        assert queue.stalls == 1
        assert len(queue) == 2

    def test_fifo_order_and_head(self):
        queue = BoundedQueue("q", capacity=3)
        for item in ("a", "b", "c"):
            queue.offer(item)
        assert queue.head() == "a"
        assert queue.take() == "a"
        assert queue.take() == "b"
        assert queue.head() == "c"

    def test_peak_tracks_high_water_mark(self):
        queue = BoundedQueue("q", capacity=4)
        queue.offer("a")
        queue.offer("b")
        queue.take()
        queue.offer("c")
        assert queue.peak == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", capacity=0)


class TestStreamedIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_darwin_streamed_matches_serial(
        self, pair, serial_darwin, workers
    ):
        with DarwinWGA(workers=workers) as aligner:
            result = aligner.align(*pair)
        assert_same_result(serial_darwin, result)
        assert aligner.last_stream is not None
        assert aligner.last_stream["dispatched_tasks"] == (
            aligner.last_stream["collected_tasks"]
        )

    def test_lastz_streamed_matches_serial(self, pair, serial_lastz):
        with LastzAligner(workers=2) as aligner:
            result = aligner.align(*pair)
        assert_same_result(serial_lastz, result)

    def test_barrier_opt_out_matches_serial(self, pair, serial_darwin):
        with DarwinWGA(workers=2, streaming=False) as aligner:
            result = aligner.align(*pair)
        assert_same_result(serial_darwin, result)
        # The barrier path still reports occupancy via the observer.
        assert aligner.last_stream["collected_tasks"] > 0

    def test_tight_watermark_matches_serial(self, pair, serial_darwin):
        params = StreamParams(max_in_flight_anchors=1)
        with DarwinWGA(workers=2, stream_params=params) as aligner:
            result = aligner.align(*pair)
        assert_same_result(serial_darwin, result)
        assert aligner.last_stream["peak_in_flight"] == 1


class TestBackpressure:
    def test_watermark_bounds_speculation(self, pair):
        params = StreamParams(
            max_in_flight_anchors=2, defer_diagonal_bp=0
        )
        with DarwinWGA(workers=2, stream_params=params) as aligner:
            aligner.align(*pair)
        stats = aligner.last_stream
        assert stats["peak_in_flight"] <= 2
        # With deferral off and a 2-anchor window the watermark must
        # actually throttle: anchors were pending while the window was
        # full, and every refusal was counted.
        assert stats["backpressure_stalls"] > 0

    def test_slow_consumer_blocks_producers(self, pair, serial_darwin):
        """Injected stalls slow every collection; the bounded window
        must hold speculation at the watermark and output must not
        change."""
        sleeps = []
        real_sleep = stream_module._sleep
        stream_module._sleep = sleeps.append
        try:
            options = ResilienceOptions(
                fault_plan=FaultPlan(5, {"stall": 1.0})
            )
            params = StreamParams(max_in_flight_anchors=2)
            with DarwinWGA(
                workers=2, stream_params=params, resilience=options
            ) as aligner:
                result = aligner.align(*pair)
        finally:
            stream_module._sleep = real_sleep
        assert_same_result(serial_darwin, result)
        assert aligner.last_stream["peak_in_flight"] <= 2
        stalled = options.stats.injected_faults.get("stall", 0)
        assert stalled > 0
        assert len(sleeps) == stalled

    @pytest.mark.parametrize(
        "spec", ["3:crash=0.4,stall=0.5", "4:timeout=0.5,error=0.3"]
    )
    def test_chaos_streamed_output_identical(
        self, pair, serial_darwin, spec
    ):
        options = ResilienceOptions(
            policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            fault_plan=FaultPlan.parse(spec),
        )
        with DarwinWGA(workers=2, resilience=options) as aligner:
            result = aligner.align(*pair)
        assert_same_result(serial_darwin, result)


@pytest.fixture(scope="module")
def assemblies():
    pair = make_species_pair(7000, 0.4, np.random.default_rng(19))
    t, q = pair.target.genome, pair.query.genome
    target = Assembly(
        name="t",
        chromosomes=[
            Sequence(t.codes[:3500], name="t1"),
            Sequence(t.codes[3500:], name="t2"),
        ],
    )
    query = Assembly(
        name="q",
        chromosomes=[
            Sequence(q.codes[:3500], name="q1"),
            Sequence(q.codes[3500:], name="q2"),
        ],
    )
    return target, query


class TestAssemblyUnitWindow:
    def test_unit_window_bounds_in_flight(self, assemblies):
        target, query = assemblies
        serial = align_assemblies(target, query)
        tracer = Tracer()
        streamed = align_assemblies(
            target,
            query,
            workers=2,
            tracer=tracer,
            stream=StreamParams(unit_window=1),
        )
        assert streamed.alignments == serial.alignments
        span = next(
            s for s in tracer.walk() if s.name == "align_assemblies"
        )
        assert span.attrs["peak_in_flight"] == 1
        # 2x2 units through a 1-wide window: the fill loop was refused
        # at least once per drained unit.
        assert span.attrs["backpressure_stalls"] >= 3

    def test_resume_mid_stream_matches_serial(
        self, assemblies, tmp_path
    ):
        target, query = assemblies
        serial = align_assemblies(target, query)
        manifest_path = tmp_path / "run.manifest"
        align_assemblies(
            target, query, workers=2, checkpoint=manifest_path
        )
        # Re-create the manifest with only the first journaled unit, as
        # if the run had died mid-stream with three units un-committed.
        full = RunManifest.load(manifest_path)
        first = full.units[0]
        partial_path = tmp_path / "partial.manifest"
        partial = RunManifest.create(
            partial_path,
            aligner=full.header["aligner"],
            config=full.header["config"],
            target=full.header["target"],
            query=full.header["query"],
        )
        partial.record(first, full.result_for(first))
        options = ResilienceOptions()
        resumed = align_assemblies(
            target,
            query,
            workers=2,
            checkpoint=partial_path,
            resume=True,
            resilience=options,
        )
        assert resumed.alignments == serial.alignments
        assert options.stats.resumed_units == 1
        assert options.stats.journaled_units == 3


class TestStreamTelemetry:
    def test_metrics_and_span_attributes(self, pair):
        telemetry = TelemetryOptions()
        tracer = Tracer()
        with DarwinWGA(
            workers=2, tracer=tracer, telemetry=telemetry
        ) as aligner:
            aligner.align(*pair)
        metrics = telemetry.registry.as_dict()
        assert metrics["stream_queue_depth"]["count"] > 0
        assert "stream_occupancy" in metrics
        assert "stream_idle_tail_seconds" in metrics
        assert "stream_peak_in_flight" in metrics
        assert "stream_backpressure_stalls" in metrics
        extend = next(
            s for s in tracer.walk() if s.name == "extend"
        )
        assert 0.0 <= extend.attrs["occupancy"] <= 1.0
        assert extend.attrs["idle_tail_seconds"] >= 0.0
        assert extend.attrs["peak_in_flight"] >= 1
        # Producer spans nest under the extend span: the overlap is
        # real, so the trace reflects it.
        strand_spans = [
            s for s in extend.walk() if s.name == "strand"
        ]
        assert len(strand_spans) == 2
