"""GACT-X tiled extension tests."""

import numpy as np
import pytest

from repro.align import AnchorHit, Cigar
from repro.align.matrices import lastz_default
from repro.core import ExtensionParams, gact_x_extend, score_cigar, truncate_cigar
from repro.genome import Sequence

from .. import reference


@pytest.fixture
def scoring():
    return lastz_default()


@pytest.fixture
def params():
    return ExtensionParams(
        tile_size=256, overlap=32, ydrop=9430, threshold=1000
    )


def shared_segment_pair(rng, pad=600, core=900, mutate=0.0):
    core_codes = rng.integers(0, 4, core).astype(np.uint8)
    q_core = core_codes.copy()
    if mutate:
        sites = rng.random(core) < mutate
        q_core[sites] = (q_core[sites] + 1 + rng.integers(0, 3, int(sites.sum()))) % 4
    target = Sequence(
        np.concatenate(
            [rng.integers(0, 4, pad).astype(np.uint8), core_codes,
             rng.integers(0, 4, pad).astype(np.uint8)]
        ),
        "t",
    )
    query = Sequence(
        np.concatenate(
            [rng.integers(0, 4, pad).astype(np.uint8), q_core,
             rng.integers(0, 4, pad).astype(np.uint8)]
        ),
        "q",
    )
    return target, query, pad, core


class TestTruncateCigar:
    def test_truncates_at_boundary(self):
        cigar = Cigar.parse("100=")
        piece, i, j = truncate_cigar(cigar, 40)
        assert str(piece) == "40="
        assert (i, j) == (40, 40)

    def test_gap_runs_respect_boundary(self):
        cigar = Cigar.parse("30=20D30=")
        piece, i, j = truncate_cigar(cigar, 45)
        assert j == 45
        assert i == 30
        assert str(piece) == "30=15D"

    def test_whole_path_within_boundary(self):
        cigar = Cigar.parse("10=2I10=")
        piece, i, j = truncate_cigar(cigar, 100)
        assert piece == cigar
        assert (i, j) == (22, 20)

    def test_zero_boundary(self):
        piece, i, j = truncate_cigar(Cigar.parse("5="), 0)
        assert len(piece) == 0
        assert (i, j) == (0, 0)


class TestScoreCigar:
    def test_matches_reference(self, scoring, rng):
        t = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
        q = Sequence(t.codes.copy())
        cigar = Cigar.parse("20=3D27=")
        q2 = Sequence(np.delete(t.codes, slice(20, 23)))
        got = score_cigar(cigar, t, q2, 0, 0, scoring)
        assert got == reference.cigar_score(cigar, t, q2, scoring)


class TestExtension:
    def test_recovers_planted_segment(self, scoring, params, rng):
        target, query, pad, core = shared_segment_pair(rng)
        anchor = AnchorHit(
            target_pos=pad + core // 2,
            query_pos=pad + core // 2,
            filter_score=5000,
        )
        result = gact_x_extend(target, query, anchor, scoring, params)
        alignment = result.alignment
        assert alignment is not None
        alignment.verify(target, query)
        # the alignment must cover (nearly) the whole planted core
        assert alignment.target_start <= pad + 10
        assert alignment.target_end >= pad + core - 10
        assert alignment.matches >= core * 0.95

    def test_extension_spans_multiple_tiles(self, scoring, rng):
        params = ExtensionParams(
            tile_size=128, overlap=16, ydrop=9430, threshold=1000
        )
        target, query, pad, core = shared_segment_pair(rng, core=700)
        anchor = AnchorHit(pad + 350, pad + 350, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        assert result.tile_count > 4
        assert result.alignment is not None
        assert result.alignment.matches >= 650

    def test_mutated_segment_still_aligns(self, scoring, params, rng):
        target, query, pad, core = shared_segment_pair(rng, mutate=0.2)
        anchor = AnchorHit(pad + core // 2, pad + core // 2, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        assert result.alignment is not None
        assert result.alignment.identity() > 0.6

    def test_score_equals_cigar_score(self, scoring, params, rng):
        target, query, pad, core = shared_segment_pair(rng, mutate=0.1)
        anchor = AnchorHit(pad + core // 2, pad + core // 2, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        alignment = result.alignment
        recomputed = reference.cigar_score(
            alignment.cigar,
            target,
            query,
            scoring,
            alignment.target_start,
            alignment.query_start,
        )
        assert recomputed == alignment.score

    def test_threshold_rejects_weak_alignment(self, scoring, rng):
        params = ExtensionParams(
            tile_size=256, overlap=32, ydrop=9430, threshold=10**7
        )
        target, query, pad, core = shared_segment_pair(rng)
        anchor = AnchorHit(pad + core // 2, pad + core // 2, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        assert result.alignment is None
        assert result.tile_count > 0  # work was still done

    def test_anchor_at_sequence_edge(self, scoring, params, rng):
        target = Sequence(rng.integers(0, 4, 400).astype(np.uint8), "t")
        query = Sequence(target.codes.copy(), "q")
        for pos in (0, len(target) - 1):
            anchor = AnchorHit(pos, pos, 5000)
            result = gact_x_extend(target, query, anchor, scoring, params)
            assert result.alignment is not None
            result.alignment.verify(target, query)

    def test_extension_crosses_moderate_gap(self, scoring, params, rng):
        # 100bp deletion costs 430+99*30 = 3400 < Y=9430: one tile bridges
        core = rng.integers(0, 4, 800).astype(np.uint8)
        target = Sequence(core, "t")
        query = Sequence(np.delete(core, slice(400, 500)), "q")
        anchor = AnchorHit(100, 100, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        assert result.alignment is not None
        assert result.alignment.cigar.count("D") >= 100
        assert result.alignment.target_end > 700

    def test_extension_stops_at_huge_gap(self, scoring, params, rng):
        # 1000bp deletion costs ~30k > Y: extension must stop before it
        core = rng.integers(0, 4, 2200).astype(np.uint8)
        target = Sequence(core, "t")
        query = Sequence(np.delete(core, slice(600, 1600)), "q")
        anchor = AnchorHit(100, 100, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        assert result.alignment is not None
        assert result.alignment.target_end <= 650

    def test_workload_traces_recorded(self, scoring, params, rng):
        target, query, pad, core = shared_segment_pair(rng)
        anchor = AnchorHit(pad + core // 2, pad + core // 2, 5000)
        result = gact_x_extend(target, query, anchor, scoring, params)
        assert result.tile_count == len(result.tiles)
        assert result.cells == sum(t.cells for t in result.tiles)
        for trace in result.tiles:
            assert trace.rows == len(trace.row_windows)
