"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.align.matrices import lastz_default, unit
from repro.genome import Sequence, make_species_pair


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(98765)


@pytest.fixture(scope="session")
def small_pair():
    """A small mosaic species pair shared by integration-style tests."""
    return make_species_pair(
        12000,
        0.8,
        np.random.default_rng(2024),
        exon_count=6,
        alignable_fraction=0.4,
        island_mean_length=300,
        island_distance_cap=0.4,
        indel_per_substitution=0.14,
        exon_indel_per_substitution=0.05,
    )


@pytest.fixture(scope="session")
def close_pair():
    """A close, fully alignable pair."""
    return make_species_pair(8000, 0.1, np.random.default_rng(7))


@pytest.fixture
def unit_scoring():
    return unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)


@pytest.fixture
def lastz_scoring():
    return lastz_default()


def random_sequence(rng, length, include_n=False, name="seq"):
    """Helper used across test modules."""
    high = 5 if include_n else 4
    return Sequence(
        rng.integers(0, high, size=length).astype(np.uint8), name=name
    )
