"""Neighbour-joining tree tests."""

import numpy as np
import pytest

from repro.phylo import TreeNode, neighbour_joining, tree_distance


class TestNeighbourJoining:
    def test_recovers_additive_distances(self):
        # A perfectly additive 4-leaf tree: NJ must recover every
        # pairwise path length exactly.
        names = ["A", "B", "C", "D"]
        #    A --1--+          +--2-- C
        #           +--- 3 ----+
        #    B --2--+          +--4-- D
        matrix = np.array(
            [
                [0, 3, 6, 8],
                [3, 0, 7, 9],
                [6, 7, 0, 6],
                [8, 9, 6, 0],
            ],
            dtype=float,
        )
        tree = neighbour_joining(names, matrix)
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                if i < j:
                    assert tree_distance(tree, a, b) == pytest.approx(
                        matrix[i, j]
                    )

    def test_leaves_preserved(self):
        names = ["w", "x", "y", "z", "v"]
        rng = np.random.default_rng(4)
        points = rng.random((5, 3))
        matrix = np.linalg.norm(
            points[:, None, :] - points[None, :, :], axis=2
        )
        tree = neighbour_joining(names, matrix)
        assert sorted(tree.leaves()) == sorted(names)

    def test_two_leaves(self):
        tree = neighbour_joining(["a", "b"], np.array([[0, 4], [4, 0]], float))
        assert tree_distance(tree, "a", "b") == pytest.approx(4)

    def test_newick_rendering(self):
        tree = neighbour_joining(
            ["a", "b", "c"],
            np.array([[0, 2, 4], [2, 0, 4], [4, 4, 0]], float),
        )
        text = tree.newick()
        assert text.endswith(";")
        for name in ("a", "b", "c"):
            assert name in text

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbour_joining(["a", "b"], np.zeros((3, 3)))
        asym = np.array([[0, 1], [2, 0]], float)
        with pytest.raises(ValueError):
            neighbour_joining(["a", "b"], asym)

    def test_missing_leaf_raises(self):
        tree = neighbour_joining(
            ["a", "b"], np.array([[0, 1], [1, 0]], float)
        )
        with pytest.raises(KeyError):
            tree_distance(tree, "a", "zzz")


class TestTreeNode:
    def test_leaf_properties(self):
        leaf = TreeNode(name="x")
        assert leaf.is_leaf
        assert leaf.leaves() == ["x"]
        assert leaf.leaf_distances() == {"x": 0.0}

    def test_internal_distances(self):
        left = TreeNode(name="a")
        right = TreeNode(name="b")
        root = TreeNode(name="r", children=[(left, 1.5), (right, 2.5)])
        assert root.leaf_distances() == {"a": 1.5, "b": 2.5}
