"""Phylogenetic distance estimator tests."""

import math

import numpy as np
import pytest

from repro.align import Alignment, Cigar
from repro.core import DarwinWGA
from repro.genome import (
    Sequence,
    k80_difference_probabilities,
    make_species_pair,
)
from repro.phylo import (
    count_sites,
    estimate_distance,
    jc69_distance,
    k80_distance,
    k80_kappa,
)


class TestCorrections:
    def test_jc69_zero(self):
        assert jc69_distance(0.0) == 0.0

    def test_jc69_saturation(self):
        assert jc69_distance(0.75) == math.inf

    def test_jc69_inverts_expected_fraction(self):
        # p = 3/4 (1 - e^{-4d/3}) -> jc69(p) == d
        for d in (0.1, 0.5, 1.0):
            p = 0.75 * (1 - math.exp(-4 * d / 3))
            assert jc69_distance(p) == pytest.approx(d)

    def test_k80_inverts_model_probabilities(self):
        for d in (0.1, 0.4, 1.2):
            for kappa in (1.0, 2.0, 5.0):
                p, q = k80_difference_probabilities(d, kappa)
                assert k80_distance(p, q) == pytest.approx(d, rel=1e-6)

    def test_k80_kappa_recovered(self):
        p, q = k80_difference_probabilities(0.5, 3.0)
        assert k80_kappa(p, q) == pytest.approx(3.0, rel=1e-6)

    def test_k80_saturation(self):
        assert k80_distance(0.5, 0.0) == math.inf

    def test_jc69_validation(self):
        with pytest.raises(ValueError):
            jc69_distance(-0.1)


class TestCountSites:
    def test_classification(self):
        target = Sequence.from_string("ACGT", name="t")
        query = Sequence.from_string("GCTT", name="q")
        # A-G transition, C-C match, G-T transversion, T-T match
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=4,
            query_start=0,
            query_end=4,
            score=0,
            cigar=Cigar.parse("1X1=1X1="),
        )
        counts = count_sites(target, query, [alignment])
        assert counts.pairs == 4
        assert counts.transitions == 1
        assert counts.transversions == 1

    def test_n_sites_skipped(self):
        target = Sequence.from_string("AN", name="t")
        query = Sequence.from_string("AC", name="q")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=2,
            query_start=0,
            query_end=2,
            score=0,
            cigar=Cigar.parse("1=1X"),
        )
        counts = count_sites(target, query, [alignment])
        assert counts.pairs == 1

    def test_gaps_not_counted(self):
        target = Sequence.from_string("AAAA", name="t")
        query = Sequence.from_string("AA", name="q")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=4,
            query_start=0,
            query_end=2,
            score=0,
            cigar=Cigar.parse("2=2D"),
        )
        counts = count_sites(target, query, [alignment])
        assert counts.pairs == 2


class TestClosedLoop:
    def test_recovers_planted_distance(self):
        """The paper's Figure 8 distances, end to end: simulate at a known
        distance, align, estimate — the K80 estimator must recover it."""
        rng = np.random.default_rng(11)
        for planted in (0.2, 0.5):
            pair = make_species_pair(
                20000, planted, rng, indel_per_substitution=0.02
            )
            result = DarwinWGA().align(
                pair.target.genome, pair.query.genome
            )
            estimate = estimate_distance(
                pair.target.genome, pair.query.genome, result.alignments
            )
            assert estimate == pytest.approx(planted, rel=0.25)

    def test_unknown_model_rejected(self, rng):
        pair = make_species_pair(3000, 0.2, rng)
        with pytest.raises(ValueError):
            estimate_distance(
                pair.target.genome, pair.query.genome, [], model="hky"
            )

    def test_no_alignments_is_infinite(self, rng):
        pair = make_species_pair(2000, 0.2, rng)
        assert (
            estimate_distance(pair.target.genome, pair.query.genome, [])
            == math.inf
        )
