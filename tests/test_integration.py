"""End-to-end integration tests spanning multiple subsystems."""

import io

import numpy as np
import pytest

from repro import (
    DarwinWGA,
    LastzAligner,
    build_chains,
    make_species_pair,
)
from repro.annotate import exon_coverage, find_orthologous_exons
from repro.chain import total_matches, ungapped_block_lengths
from repro.genome import shuffle_preserving_kmers
from repro.hw import CostModel, GactXArrayModel, default_asic
from repro.io import maf_string, read_maf
from repro.phylo import estimate_distance


class TestFullWorkflow:
    """The complete paper workflow on one shared pair."""

    @pytest.fixture(scope="class")
    def workflow(self, small_pair):
        target = small_pair.target.genome
        query = small_pair.query.genome
        darwin = DarwinWGA().align(target, query)
        lastz = LastzAligner().align(target, query)
        return small_pair, darwin, lastz

    def test_alignment_to_chain_to_metrics(self, workflow):
        pair, darwin, lastz = workflow
        darwin_chains = build_chains(darwin.alignments)
        lastz_chains = build_chains(lastz.alignments)
        assert total_matches(darwin_chains) > 0
        # the headline: gapped filtering does not lose sensitivity
        assert total_matches(darwin_chains) >= 0.9 * total_matches(
            lastz_chains
        )

    def test_exon_pipeline(self, workflow):
        pair, darwin, _ = workflow
        target = pair.target.genome
        hits = find_orthologous_exons(
            target, pair.target.exons, pair.query.genome
        )
        assert hits  # mini-TBLASTX confirms orthologs
        chains = build_chains(darwin.alignments)
        report = exon_coverage(
            chains, [h.exon for h in hits], len(target)
        )
        assert report.coverage > 0.5

    def test_distance_estimation_consistent(self, workflow):
        pair, darwin, _ = workflow
        distance = estimate_distance(
            pair.target.genome, pair.query.genome, darwin.alignments
        )
        # islands are capped at 0.4 divergence; estimates from aligned
        # (i.e. island) columns must land near the cap, not at the
        # nominal pair distance
        assert 0.1 < distance < 0.8

    def test_maf_roundtrip_of_real_output(self, workflow):
        pair, darwin, _ = workflow
        target = pair.target.genome
        query = pair.query.genome
        parsed = read_maf(
            io.StringIO(maf_string(darwin.alignments, target, query))
        )
        assert len(parsed) == len(darwin.alignments)
        for alignment in parsed:
            alignment.verify(target, query)

    def test_hardware_projection_of_real_workload(self, workflow):
        _, darwin, _ = workflow
        model = CostModel.default()
        fpga = model.fpga_runtime(darwin.workload)
        asic = model.asic_runtime(darwin.workload)
        assert 0 < asic.total < fpga.total

    def test_traceback_memory_within_budget(self, workflow):
        """Every GACT-X tile of a real run fits the Table IV SRAM."""
        _, darwin, _ = workflow
        gactx = GactXArrayModel(config=default_asic().array_config)
        traces = darwin.workload.extension_tile_traces
        assert traces
        for trace in traces:
            assert gactx.fits_in_sram(trace)

    def test_block_lengths_shrink_with_distance(self):
        rng = np.random.default_rng(555)
        means = []
        for distance in (0.1, 1.2):
            pair = make_species_pair(
                15000,
                distance,
                rng,
                alignable_fraction=0.5,
                island_mean_length=400,
                indel_per_substitution=0.14,
            )
            result = DarwinWGA().align(
                pair.target.genome, pair.query.genome
            )
            lengths = ungapped_block_lengths(
                build_chains(result.alignments)
            )
            assert lengths.size > 0
            means.append(float(np.mean(lengths)))
        # Figure 2's core fact, end to end.
        assert means[1] < means[0]

    def test_shuffled_target_yields_nothing(self, workflow):
        pair, darwin, _ = workflow
        rng = np.random.default_rng(99)
        shuffled = shuffle_preserving_kmers(
            pair.target.genome, rng, k=2
        )
        result = DarwinWGA().align(shuffled, pair.query.genome)
        false_positives = total_matches(build_chains(result.alignments))
        real = total_matches(build_chains(darwin.alignments))
        assert false_positives < 0.02 * max(real, 1)
