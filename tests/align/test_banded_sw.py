"""Banded Smith-Waterman kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import band_cells, best_score, bsw_batch, bsw_tile, unit
from repro.align.matrices import lastz_default
from repro.genome import Sequence

from .. import reference

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


@pytest.fixture
def scoring():
    return unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)


class TestSingleTile:
    def test_wide_band_equals_full_sw(self, scoring, rng):
        for _ in range(5):
            t = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
            q = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
            banded = bsw_tile(t, q, scoring, band=60)
            assert banded.score == best_score(t, q, scoring)

    def test_band_zero_is_diagonal_only(self, scoring):
        t = Sequence.from_string("ACGTACGT")
        result = bsw_tile(t, t, scoring, band=0)
        assert result.score == 40

    def test_narrow_band_misses_off_diagonal(self, scoring):
        # match requires shifting by 5; band 2 cannot reach it
        t = Sequence.from_string("TTTTTACGTACGT")
        q = Sequence.from_string("ACGTACGTGGGGG")
        wide = bsw_tile(t, q, scoring, band=12)
        narrow = bsw_tile(t, q, scoring, band=2)
        assert wide.score > narrow.score

    def test_max_position_reported(self, scoring):
        t = Sequence.from_string("ACGT")
        result = bsw_tile(t, t, scoring, band=4)
        assert (result.max_i, result.max_j) == (4, 4)

    def test_empty_inputs(self, scoring):
        empty = Sequence.from_string("")
        other = Sequence.from_string("ACG")
        assert bsw_tile(empty, other, scoring, band=2).score == 0

    def test_negative_band_rejected(self, scoring):
        t = Sequence.from_string("ACG")
        with pytest.raises(ValueError):
            bsw_batch(
                t.codes[None, :], t.codes[None, :], scoring, band=-1
            )


class TestAgainstReference:
    @settings(max_examples=50, deadline=None)
    @given(dna, dna, st.integers(0, 12))
    def test_matches_naive_banded(self, t_text, q_text, band):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        expected = reference.banded_local_score(t, q, scoring, band)
        assert bsw_tile(t, q, scoring, band).score == expected

    @settings(max_examples=20, deadline=None)
    @given(dna, dna, st.integers(0, 8))
    def test_matches_naive_banded_lastz(self, t_text, q_text, band):
        scoring = lastz_default()
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        expected = reference.banded_local_score(t, q, scoring, band)
        assert bsw_tile(t, q, scoring, band).score == expected

    def test_score_monotone_in_band(self, scoring, rng):
        t = Sequence(rng.integers(0, 4, 60).astype(np.uint8))
        q = Sequence(rng.integers(0, 4, 60).astype(np.uint8))
        scores = [
            bsw_tile(t, q, scoring, band).score for band in (0, 2, 8, 32)
        ]
        assert scores == sorted(scores)


class TestBatch:
    def test_batch_equals_single(self, scoring, rng):
        k, m = 16, 48
        targets = rng.integers(0, 5, (k, m)).astype(np.uint8)
        queries = rng.integers(0, 5, (k, m)).astype(np.uint8)
        scores, max_i, max_j = bsw_batch(targets, queries, scoring, band=6)
        for idx in range(k):
            single = bsw_tile(
                Sequence(targets[idx]), Sequence(queries[idx]), scoring, 6
            )
            assert scores[idx] == single.score
            if single.score > 0:
                assert (max_i[idx], max_j[idx]) == (
                    single.max_i,
                    single.max_j,
                )

    def test_shape_validation(self, scoring):
        with pytest.raises(ValueError):
            bsw_batch(
                np.zeros((2, 4), dtype=np.uint8),
                np.zeros((3, 4), dtype=np.uint8),
                scoring,
                band=2,
            )
        with pytest.raises(ValueError):
            bsw_batch(
                np.zeros(4, dtype=np.uint8),
                np.zeros(4, dtype=np.uint8),
                scoring,
                band=2,
            )


class TestBandCells:
    def test_full_band_counts_all_cells(self):
        assert band_cells(4, 4, 10) == 16

    def test_band_zero_counts_diagonal(self):
        assert band_cells(5, 5, 0) == 5

    def test_known_small_case(self):
        # 3x3, band 1: row1 -> cols1-2, row2 -> cols1-3, row3 -> cols2-3
        assert band_cells(3, 3, 1) == 7
