"""Unit tests for CIGAR strings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align import Cigar

ops = st.sampled_from("=XID")
run_lists = st.lists(
    st.tuples(ops, st.integers(1, 50)), min_size=0, max_size=20
)


class TestConstruction:
    def test_from_runs_merges_adjacent(self):
        cigar = Cigar.from_runs([("=", 3), ("=", 2), ("X", 1)])
        assert cigar.runs == (("=", 5), ("X", 1))

    def test_from_runs_drops_zero_lengths(self):
        cigar = Cigar.from_runs([("=", 3), ("I", 0), ("X", 1)])
        assert cigar.runs == (("=", 3), ("X", 1))

    def test_from_ops(self):
        assert Cigar.from_ops("==XX=").runs == (("=", 2), ("X", 2), ("=", 1))

    def test_parse_and_str_roundtrip(self):
        text = "12=1X3D8=2I"
        assert str(Cigar.parse(text)) == text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cigar.parse("12")
        with pytest.raises(ValueError):
            Cigar.parse("=12")

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Cigar((("M", 3),))

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            Cigar((("=", 0),))


class TestAccounting:
    @pytest.fixture
    def cigar(self):
        return Cigar.parse("10=2X3I5=4D1=")

    def test_length(self, cigar):
        assert len(cigar) == 25

    def test_spans(self, cigar):
        assert cigar.target_span == 10 + 2 + 5 + 4 + 1
        assert cigar.query_span == 10 + 2 + 3 + 5 + 1

    def test_matches_mismatches(self, cigar):
        assert cigar.matches == 16
        assert cigar.mismatches == 2

    def test_identity(self, cigar):
        assert cigar.identity() == pytest.approx(16 / 18)

    def test_identity_empty(self):
        assert Cigar(()).identity() == 0.0

    def test_gap_runs(self, cigar):
        assert cigar.gap_runs() == [("I", 3), ("D", 4)]

    def test_addition(self):
        left = Cigar.parse("3=")
        right = Cigar.parse("2=1X")
        assert str(left + right) == "5=1X"

    def test_reversed(self, cigar):
        assert cigar.reversed().runs == tuple(reversed(cigar.runs))


class TestUngappedBlocks:
    def test_blocks_split_at_gaps(self):
        cigar = Cigar.parse("10=1I5=2X1D7=")
        assert cigar.ungapped_block_lengths() == [10, 7, 7]

    def test_no_gaps_single_block(self):
        assert Cigar.parse("9=1X").ungapped_block_lengths() == [10]

    def test_leading_trailing_gaps(self):
        assert Cigar.parse("2I5=3D").ungapped_block_lengths() == [5]

    def test_empty(self):
        assert Cigar(()).ungapped_block_lengths() == []


class TestProperties:
    @given(run_lists)
    def test_lengths_consistent(self, runs):
        cigar = Cigar.from_runs(runs)
        assert len(cigar) == cigar.target_span + cigar.count("I")
        assert len(cigar) == cigar.query_span + cigar.count("D")

    @given(run_lists)
    def test_merging_is_idempotent(self, runs):
        once = Cigar.from_runs(runs)
        twice = Cigar.from_runs(once.runs)
        assert once == twice

    @given(run_lists)
    def test_reverse_involution(self, runs):
        cigar = Cigar.from_runs(runs)
        assert cigar.reversed().reversed() == cigar

    @given(run_lists)
    def test_parse_str_roundtrip(self, runs):
        cigar = Cigar.from_runs(runs)
        assert Cigar.parse(str(cigar)) == cigar

    @given(run_lists)
    def test_block_lengths_sum_to_aligned_pairs(self, runs):
        cigar = Cigar.from_runs(runs)
        assert sum(cigar.ungapped_block_lengths()) == cigar.aligned_pairs
