"""Ungapped X-drop extension tests."""

import numpy as np
import pytest

from repro.align import (
    ungapped_extend,
    ungapped_extend_batch,
    unit,
)
from repro.align.matrices import lastz_default
from repro.genome import Sequence


@pytest.fixture
def scoring():
    return unit(match=10, mismatch=-5, gap_open=15, gap_extend=5)


class TestSingle:
    def test_perfect_diagonal(self, scoring):
        t = Sequence.from_string("ACGTACGTAC")
        result = ungapped_extend(t, t, 4, 4, scoring, xdrop=20)
        assert result.score == 10 * 10
        assert result.target_start == 0
        assert result.target_end == 10

    def test_extension_stops_at_xdrop(self, scoring):
        # 6 matches then garbage: right extension should stop after the
        # matches once the score has dropped by more than xdrop.
        t = Sequence.from_string("ACGTAC" + "T" * 20)
        q = Sequence.from_string("ACGTAC" + "G" * 20)
        result = ungapped_extend(t, q, 0, 0, scoring, xdrop=12)
        assert result.score == 6 * 10
        assert result.target_end <= 9

    def test_left_extension(self, scoring):
        t = Sequence.from_string("ACGTACGT")
        result = ungapped_extend(t, t, 8, 8, scoring, xdrop=50)
        assert result.score == 80
        assert result.target_start == 0

    def test_mismatch_tolerated_within_xdrop(self, scoring):
        t = Sequence.from_string("ACGTACGTAA")
        q = Sequence.from_string("ACGTTCGTAA")
        result = ungapped_extend(t, q, 0, 0, scoring, xdrop=30)
        assert result.score == 9 * 10 - 5

    def test_no_positive_extension(self, scoring):
        t = Sequence.from_string("AAAA")
        q = Sequence.from_string("TTTT")
        result = ungapped_extend(t, q, 0, 0, scoring, xdrop=3)
        assert result.score == 0
        assert result.target_start == result.target_end == 0

    def test_boundary_clamping(self, scoring):
        t = Sequence.from_string("ACG")
        result = ungapped_extend(t, t, 0, 0, scoring, xdrop=100)
        assert result.score == 30
        assert result.cells <= 2 * len(t)

    def test_indel_breaks_diagonal(self, scoring):
        # An insertion shifts the frame; scores decorrelate after it.
        t = Sequence.from_string("ACGTACGT" + "ACGTACGTACGT")
        q = Sequence.from_string("ACGTACGT" + "G" + "ACGTACGTACG")
        full = ungapped_extend(t, q, 0, 0, scoring, xdrop=25)
        assert full.score <= 8 * 10 + 10  # cannot bridge the indel


class TestBatch:
    def test_batch_matches_single(self, rng):
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 600).astype(np.uint8), "t")
        q = Sequence(rng.integers(0, 4, 600).astype(np.uint8), "q")
        # plant identical segments to create real hits
        codes_q = q.codes.copy()
        codes_q[100:180] = t.codes[200:280]
        q = Sequence(codes_q, "q")
        t_pos = np.array([200, 240, 0, 599])
        q_pos = np.array([100, 140, 0, 599])
        scores, lspans, rspans = ungapped_extend_batch(
            t, q, t_pos, q_pos, scoring, xdrop=910, max_length=128
        )
        for i in range(t_pos.size):
            single = ungapped_extend(
                t,
                q,
                int(t_pos[i]),
                int(q_pos[i]),
                scoring,
                xdrop=910,
                max_length=128,
            )
            assert scores[i] == single.score
            if single.score > 0:
                assert rspans[i] == single.target_end - t_pos[i]
                assert lspans[i] == t_pos[i] - single.target_start

    def test_empty_batch(self, rng):
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 10).astype(np.uint8))
        scores, lspans, rspans = ungapped_extend_batch(
            t, t, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            scoring, xdrop=100,
        )
        assert scores.size == 0

    def test_out_of_range_positions_score_zero_side(self, rng):
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
        scores, _, _ = ungapped_extend_batch(
            t,
            t,
            np.array([0]),
            np.array([0]),
            scoring,
            xdrop=910,
            max_length=64,
        )
        assert scores[0] == 50 * 91 or scores[0] > 0
