"""Ungapped X-drop extension tests."""

import numpy as np
import pytest

from repro.align import (
    ungapped_extend,
    ungapped_extend_batch,
    unit,
)
from repro.align.matrices import lastz_default
from repro.genome import Sequence


@pytest.fixture
def scoring():
    return unit(match=10, mismatch=-5, gap_open=15, gap_extend=5)


class TestSingle:
    def test_perfect_diagonal(self, scoring):
        t = Sequence.from_string("ACGTACGTAC")
        result = ungapped_extend(t, t, 4, 4, scoring, xdrop=20)
        assert result.score == 10 * 10
        assert result.target_start == 0
        assert result.target_end == 10

    def test_extension_stops_at_xdrop(self, scoring):
        # 6 matches then garbage: right extension should stop after the
        # matches once the score has dropped by more than xdrop.
        t = Sequence.from_string("ACGTAC" + "T" * 20)
        q = Sequence.from_string("ACGTAC" + "G" * 20)
        result = ungapped_extend(t, q, 0, 0, scoring, xdrop=12)
        assert result.score == 6 * 10
        assert result.target_end <= 9

    def test_left_extension(self, scoring):
        t = Sequence.from_string("ACGTACGT")
        result = ungapped_extend(t, t, 8, 8, scoring, xdrop=50)
        assert result.score == 80
        assert result.target_start == 0

    def test_mismatch_tolerated_within_xdrop(self, scoring):
        t = Sequence.from_string("ACGTACGTAA")
        q = Sequence.from_string("ACGTTCGTAA")
        result = ungapped_extend(t, q, 0, 0, scoring, xdrop=30)
        assert result.score == 9 * 10 - 5

    def test_no_positive_extension(self, scoring):
        t = Sequence.from_string("AAAA")
        q = Sequence.from_string("TTTT")
        result = ungapped_extend(t, q, 0, 0, scoring, xdrop=3)
        assert result.score == 0
        assert result.target_start == result.target_end == 0

    def test_boundary_clamping(self, scoring):
        t = Sequence.from_string("ACG")
        result = ungapped_extend(t, t, 0, 0, scoring, xdrop=100)
        assert result.score == 30
        assert result.cells <= 2 * len(t)

    def test_indel_breaks_diagonal(self, scoring):
        # An insertion shifts the frame; scores decorrelate after it.
        t = Sequence.from_string("ACGTACGT" + "ACGTACGTACGT")
        q = Sequence.from_string("ACGTACGT" + "G" + "ACGTACGTACG")
        full = ungapped_extend(t, q, 0, 0, scoring, xdrop=25)
        assert full.score <= 8 * 10 + 10  # cannot bridge the indel


class TestBatch:
    def test_batch_matches_single(self, rng):
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 600).astype(np.uint8), "t")
        q = Sequence(rng.integers(0, 4, 600).astype(np.uint8), "q")
        # plant identical segments to create real hits
        codes_q = q.codes.copy()
        codes_q[100:180] = t.codes[200:280]
        q = Sequence(codes_q, "q")
        t_pos = np.array([200, 240, 0, 599])
        q_pos = np.array([100, 140, 0, 599])
        scores, lspans, rspans = ungapped_extend_batch(
            t, q, t_pos, q_pos, scoring, xdrop=910, max_length=128
        )
        for i in range(t_pos.size):
            single = ungapped_extend(
                t,
                q,
                int(t_pos[i]),
                int(q_pos[i]),
                scoring,
                xdrop=910,
                max_length=128,
            )
            assert scores[i] == single.score
            if single.score > 0:
                assert rspans[i] == single.target_end - t_pos[i]
                assert lspans[i] == t_pos[i] - single.target_start

    def test_empty_batch(self, rng):
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 10).astype(np.uint8))
        scores, lspans, rspans = ungapped_extend_batch(
            t, t, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            scoring, xdrop=100,
        )
        assert scores.size == 0

    def test_pad_clamp_keeps_scores_for_edge_hits(self, rng):
        """The padded slab is clamped to the longest live extension.

        Hits at and near the sequence ends must return the same scores
        and spans as an unclamped run: clamping only removes columns
        that are out of range for *every* lane.  ``max_length`` far
        beyond the sequence length forces the clamp to bind.
        """
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 300).astype(np.uint8), "t")
        codes_q = rng.integers(0, 4, 300).astype(np.uint8)
        codes_q[:60] = t.codes[:60]  # hit at the very start
        codes_q[240:] = t.codes[240:]  # hit at the very end
        q = Sequence(codes_q, "q")
        t_pos = np.array([0, 30, 150, 270, 299])
        q_pos = np.array([0, 30, 150, 270, 299])
        # max_length=4096 >> 300: an unclamped implementation would pad
        # every lane out to 4096 boundary columns.
        scores, lspans, rspans = ungapped_extend_batch(
            t, q, t_pos, q_pos, scoring, xdrop=910, max_length=4096
        )
        for i in range(t_pos.size):
            single = ungapped_extend(
                t, q, int(t_pos[i]), int(q_pos[i]), scoring,
                xdrop=910, max_length=4096,
            )
            assert scores[i] == single.score, i
            if single.score > 0:
                assert rspans[i] == single.target_end - t_pos[i], i
                assert lspans[i] == t_pos[i] - single.target_start, i
        # The start/end hits really did extend to the boundary.
        assert lspans[0] == 0 and rspans[0] >= 60
        assert rspans[4] == 1 and lspans[4] >= 59

    def test_pad_clamp_zero_width_batch(self, rng):
        """All hits at position 0 of both sequences: left cap is zero."""
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 40).astype(np.uint8))
        scores, lspans, rspans = ungapped_extend_batch(
            t, t, np.array([0, 0]), np.array([0, 0]),
            scoring, xdrop=910, max_length=4096,
        )
        assert (lspans == 0).all()
        assert (scores > 0).all()

    def test_out_of_range_positions_score_zero_side(self, rng):
        scoring = lastz_default()
        t = Sequence(rng.integers(0, 4, 50).astype(np.uint8))
        scores, _, _ = ungapped_extend_batch(
            t,
            t,
            np.array([0]),
            np.array([0]),
            scoring,
            xdrop=910,
            max_length=64,
        )
        assert scores[0] == 50 * 91 or scores[0] > 0
