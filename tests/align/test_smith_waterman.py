"""Smith-Waterman kernel vs the naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import align_local, best_score, score_matrix, unit
from repro.align.matrices import lastz_default
from repro.genome import Sequence

from .. import reference

dna = st.text(alphabet="ACGTN", min_size=1, max_size=30)


@pytest.fixture
def scoring():
    return unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)


class TestKnownCases:
    def test_perfect_match(self, scoring):
        t = Sequence.from_string("ACGTACGT")
        alignment = align_local(t, t, scoring)
        assert alignment.score == 8 * 5
        assert str(alignment.cigar) == "8="

    def test_embedded_match(self, scoring):
        t = Sequence.from_string("TTTTACGTACGTTTTT")
        q = Sequence.from_string("GGACGTACGTGG")
        alignment = align_local(t, q, scoring)
        assert alignment.score == 8 * 5
        assert alignment.target_start == 4
        assert alignment.query_start == 2

    def test_gap_preferred_over_mismatches(self):
        scoring = unit(match=5, mismatch=-10, gap_open=3, gap_extend=1)
        t = Sequence.from_string("AAAATTTT")
        q = Sequence.from_string("AAAGATTTT")  # extra GA hmm: one insertion
        alignment = align_local(t, q, scoring)
        assert alignment.cigar.count("I") >= 1 or alignment.cigar.count("D") >= 1

    def test_no_alignment_returns_none(self, scoring):
        t = Sequence.from_string("AAAA")
        q = Sequence.from_string("TTTT")
        assert align_local(t, q, scoring) is None

    def test_empty_inputs(self, scoring):
        empty = Sequence.from_string("")
        other = Sequence.from_string("ACGT")
        assert align_local(empty, other, scoring) is None
        assert best_score(other, empty, scoring) == 0

    def test_score_matrix_shape_and_corner(self, scoring):
        t = Sequence.from_string("ACG")
        q = Sequence.from_string("AC")
        matrix = score_matrix(t, q, scoring)
        assert matrix.shape == (3, 4)
        assert matrix[0, 0] == 0
        assert matrix[2, 2] == 10


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(dna, dna)
    def test_best_score_matches_naive_unit(self, t_text, q_text):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        assert best_score(t, q, scoring) == reference.local_score(
            t, q, scoring
        )

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_best_score_matches_naive_lastz(self, t_text, q_text):
        scoring = lastz_default()
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        assert best_score(t, q, scoring) == reference.local_score(
            t, q, scoring
        )

    @settings(max_examples=40, deadline=None)
    @given(dna, dna)
    def test_traceback_score_consistent(self, t_text, q_text):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        alignment = align_local(t, q, scoring)
        if alignment is None:
            assert reference.local_score(t, q, scoring) == 0
            return
        alignment.verify(t, q)
        recomputed = reference.cigar_score(
            alignment.cigar,
            t,
            q,
            scoring,
            alignment.target_start,
            alignment.query_start,
        )
        assert recomputed == alignment.score

    def test_random_longer_sequences(self, rng):
        scoring = lastz_default()
        for _ in range(5):
            t = Sequence(rng.integers(0, 5, 80).astype(np.uint8))
            q = Sequence(rng.integers(0, 5, 70).astype(np.uint8))
            assert best_score(t, q, scoring) == reference.local_score(
                t, q, scoring
            )
