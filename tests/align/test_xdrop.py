"""X-drop extension kernel (GACT-X tile engine) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import unit, xdrop_extend
from repro.align.matrices import lastz_default
from repro.genome import Sequence

from .. import reference

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)

BIG_Y = 10**9


@pytest.fixture
def scoring():
    return unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)


class TestSemantics:
    def test_perfect_extension(self, scoring):
        s = Sequence.from_string("ACGTACGT")
        result = xdrop_extend(s, s, scoring, BIG_Y)
        assert result.score == 40
        assert (result.max_i, result.max_j) == (8, 8)
        assert str(result.cigar) == "8="

    def test_path_starts_at_origin(self, scoring):
        # Best local match is offset; extension must anchor at (0,0) and
        # charge the leading gap.
        t = Sequence.from_string("GGACGTACGT")
        q = Sequence.from_string("ACGTACGT")
        result = xdrop_extend(t, q, scoring, BIG_Y)
        assert result.cigar.target_span == result.max_j
        assert result.cigar.query_span == result.max_i
        # walk starts at origin: spans equal max positions exactly

    def test_empty_inputs(self, scoring):
        empty = Sequence.from_string("")
        s = Sequence.from_string("ACG")
        result = xdrop_extend(empty, s, scoring, 10)
        assert result.score == 0
        assert result.cells == 0

    def test_negative_ydrop_rejected(self, scoring):
        s = Sequence.from_string("ACG")
        with pytest.raises(ValueError):
            xdrop_extend(s, s, scoring, -1)

    def test_no_traceback_mode(self, scoring):
        s = Sequence.from_string("ACGTACGT")
        result = xdrop_extend(s, s, scoring, BIG_Y, with_traceback=False)
        assert result.cigar is None
        assert result.score == 40


class TestPruning:
    def test_pruning_reduces_cells(self, scoring, rng):
        t = Sequence(rng.integers(0, 4, 200).astype(np.uint8))
        q = Sequence(rng.integers(0, 4, 200).astype(np.uint8))
        full = xdrop_extend(t, q, scoring, BIG_Y)
        pruned = xdrop_extend(t, q, scoring, 10)
        assert pruned.cells < full.cells

    def test_large_y_matches_oracle(self, rng):
        scoring = lastz_default()
        for _ in range(5):
            t = Sequence(rng.integers(0, 4, 40).astype(np.uint8))
            q = Sequence(rng.integers(0, 4, 40).astype(np.uint8))
            result = xdrop_extend(t, q, scoring, BIG_Y)
            assert result.score == reference.extension_score(t, q, scoring)

    def test_score_monotone_in_y(self, scoring, rng):
        t = Sequence(rng.integers(0, 4, 120).astype(np.uint8))
        codes = t.codes.copy()
        # introduce a long gap structure
        q = Sequence(np.concatenate([codes[:50], codes[80:]]))
        scores = [
            xdrop_extend(t, q, scoring, y).score for y in (5, 20, 100, BIG_Y)
        ]
        assert scores == sorted(scores)

    def test_ydrop_bridges_bounded_gaps(self):
        scoring = unit(match=10, mismatch=-10, gap_open=10, gap_extend=5)
        base = Sequence.from_string("ACGTACGTACGTACGTACGT")
        gapped = Sequence.from_string(
            "ACGTACGTAC" + "TTTTT" + "GTACGTACGT"
        )
        # gap of 5 costs 10 + 4*5 = 30
        bridged = xdrop_extend(base, gapped, scoring, ydrop=100)
        broken = xdrop_extend(base, gapped, scoring, ydrop=9)
        assert bridged.score > broken.score

    def test_row_windows_recorded(self, scoring):
        s = Sequence.from_string("ACGTACGTACGT")
        result = xdrop_extend(s, s, scoring, 10)
        assert result.rows_computed == len(result.row_windows)
        assert result.rows_computed >= 1
        for lo, hi in result.row_windows:
            assert 1 <= lo <= hi <= len(s)

    def test_cells_match_windows(self, scoring):
        s = Sequence.from_string("ACGTACGTACGTACGT")
        result = xdrop_extend(s, s, scoring, 12)
        expected = sum(hi - lo + 1 for lo, hi in result.row_windows)
        assert result.cells == expected


class TestAgainstOracle:
    @settings(max_examples=50, deadline=None)
    @given(dna, dna)
    def test_unbounded_y_equals_extension_oracle(self, t_text, q_text):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        result = xdrop_extend(t, q, scoring, BIG_Y)
        assert result.score == reference.extension_score(t, q, scoring)

    @settings(max_examples=40, deadline=None)
    @given(dna, dna, st.integers(0, 60))
    def test_cigar_score_consistency(self, t_text, q_text, ydrop):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        result = xdrop_extend(t, q, scoring, ydrop)
        if result.score > 0:
            assert (
                reference.cigar_score(result.cigar, t, q, scoring)
                == result.score
            )

    @settings(max_examples=40, deadline=None)
    @given(dna, dna, st.integers(0, 40))
    def test_pruned_never_exceeds_oracle(self, t_text, q_text, ydrop):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        result = xdrop_extend(t, q, scoring, ydrop)
        assert result.score <= reference.extension_score(t, q, scoring)
