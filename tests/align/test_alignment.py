"""Unit tests for alignment result objects."""

import pytest

from repro.align import Alignment, AnchorHit, Cigar
from repro.genome import Sequence


def make_alignment(cigar_text, t_start=0, q_start=0, strand=1, score=10):
    cigar = Cigar.parse(cigar_text)
    return Alignment(
        target_name="t",
        query_name="q",
        target_start=t_start,
        target_end=t_start + cigar.target_span,
        query_start=q_start,
        query_end=q_start + cigar.query_span,
        score=score,
        cigar=cigar,
        strand=strand,
    )


class TestAlignment:
    def test_spans(self):
        alignment = make_alignment("5=2D3=1I")
        assert alignment.target_span == 10
        assert alignment.query_span == 9

    def test_span_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Alignment(
                target_name="t",
                query_name="q",
                target_start=0,
                target_end=5,
                query_start=0,
                query_end=4,
                score=1,
                cigar=Cigar.parse("4="),
            )

    def test_bad_strand_rejected(self):
        with pytest.raises(ValueError):
            make_alignment("3=", strand=0)

    def test_matches_and_identity(self):
        alignment = make_alignment("8=2X")
        assert alignment.matches == 8
        assert alignment.identity() == pytest.approx(0.8)

    def test_with_score(self):
        alignment = make_alignment("3=").with_score(99)
        assert alignment.score == 99


class TestVerify:
    def test_verify_accepts_correct_cigar(self):
        target = Sequence.from_string("ACGTACGT", name="t")
        query = Sequence.from_string("ACGTTACGT", name="q")
        # query has an extra T inserted after position 4
        alignment = make_alignment("4=1I4=")
        alignment.verify(target, query)

    def test_verify_rejects_wrong_match(self):
        target = Sequence.from_string("AAAA", name="t")
        query = Sequence.from_string("AATA", name="q")
        with pytest.raises(ValueError):
            make_alignment("4=").verify(target, query)

    def test_verify_rejects_wrong_mismatch(self):
        target = Sequence.from_string("AAAA", name="t")
        query = Sequence.from_string("AAAA", name="q")
        with pytest.raises(ValueError):
            make_alignment("4X").verify(target, query)

    def test_n_pairs_are_not_matches(self):
        target = Sequence.from_string("NN", name="t")
        query = Sequence.from_string("NN", name="q")
        with pytest.raises(ValueError):
            make_alignment("2=").verify(target, query)
        make_alignment("2X").verify(target, query)

    def test_minus_strand_verify(self):
        target = Sequence.from_string("ACGT", name="t")
        query = Sequence.from_string("ACGT", name="q")
        # reverse complement of query is ACGT as well
        make_alignment("4=", strand=-1).verify(target, query)

    def test_verify_detects_truncated_walk(self):
        target = Sequence.from_string("ACGTA", name="t")
        query = Sequence.from_string("ACGT", name="q")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=4,
            query_start=0,
            query_end=4,
            score=0,
            cigar=Cigar.parse("4="),
        )
        alignment.verify(target, query)  # exact walk fine


class TestAnchorHit:
    def test_diagonal(self):
        anchor = AnchorHit(target_pos=100, query_pos=40, filter_score=5000)
        assert anchor.diagonal == 60

    def test_defaults(self):
        anchor = AnchorHit(target_pos=1, query_pos=2, filter_score=3)
        assert anchor.strand == 1
