"""Needleman-Wunsch kernel vs the naive reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import align_global, global_score, unit
from repro.align.matrices import lastz_default
from repro.genome import Sequence

from .. import reference

dna = st.text(alphabet="ACGT", max_size=30)


@pytest.fixture
def scoring():
    return unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)


class TestKnownCases:
    def test_identical(self, scoring):
        s = Sequence.from_string("ACGTACGT")
        alignment = align_global(s, s, scoring)
        assert alignment.score == 40
        assert str(alignment.cigar) == "8="

    def test_single_insertion(self, scoring):
        t = Sequence.from_string("ACGT")
        q = Sequence.from_string("ACGGT")
        alignment = align_global(t, q, scoring)
        assert alignment.cigar.count("I") == 1
        assert alignment.score == 4 * 5 - 8

    def test_empty_vs_nonempty(self, scoring):
        t = Sequence.from_string("")
        q = Sequence.from_string("ACG")
        alignment = align_global(t, q, scoring)
        assert str(alignment.cigar) == "3I"
        assert alignment.score == -(8 + 2 * 2)

    def test_both_empty(self, scoring):
        alignment = align_global(
            Sequence.from_string(""), Sequence.from_string(""), scoring
        )
        assert alignment.score == 0
        assert len(alignment.cigar) == 0

    def test_global_covers_both_sequences(self, scoring):
        t = Sequence.from_string("AATTTT")
        q = Sequence.from_string("GGGAA")
        alignment = align_global(t, q, scoring)
        assert alignment.target_end == len(t)
        assert alignment.query_end == len(q)
        assert alignment.target_start == 0
        assert alignment.query_start == 0


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(dna, dna)
    def test_score_matches_naive(self, t_text, q_text):
        scoring = unit(match=5, mismatch=-4, gap_open=8, gap_extend=2)
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        assert global_score(t, q, scoring) == reference.global_score(
            t, q, scoring
        )

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_traceback_consistent(self, t_text, q_text):
        scoring = lastz_default()
        t, q = Sequence.from_string(t_text), Sequence.from_string(q_text)
        alignment = align_global(t, q, scoring)
        alignment.verify(t, q)
        recomputed = reference.cigar_score(alignment.cigar, t, q, scoring)
        assert recomputed == alignment.score

    @settings(max_examples=30, deadline=None)
    @given(dna)
    def test_self_alignment_is_all_matches(self, text):
        scoring = unit()
        s = Sequence.from_string(text)
        alignment = align_global(s, s, scoring)
        assert alignment.cigar.matches == len(text)
