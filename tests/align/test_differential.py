"""Differential tests: vectorised kernels vs the frozen row-at-a-time oracles.

Every production DP kernel in :mod:`repro.align` is checked against its
preserved original in :mod:`repro.align._reference` over thousands of
seeded random cases: identical scores, CIGARs, maxima positions, cell
counts and (for X-drop) the per-row ``(j_start, j_stop)`` windows that
the hardware stripe sequencer replays.  Degenerate inputs (empty and
one-base tiles, all-N sequences, homopolymers) and extreme ``Y``/band
values are mixed in deterministically.

The case count per kernel scales with ``REPRO_DIFF_CASES`` (default 400
for local runs; CI sets it to at least 2000).  Failures print a minimal
repro tuple — ``(kernel, case_seed, scheme, params)`` — that rebuilds the
failing inputs exactly.
"""

import os

import numpy as np
import pytest

from repro.align import (
    align_global,
    align_local,
    best_score,
    bsw_batch,
    bsw_tile,
    global_score,
    xdrop_extend,
)
from repro.align import _reference as ref
from repro.align.matrices import hoxd70, lastz_default, unit
from repro.align.smith_waterman import score_matrix
from repro.genome import Sequence

CASES = int(os.environ.get("REPRO_DIFF_CASES", "400"))

BIG_Y = 10**9

#: Scoring schemes by name; names keep repro tuples readable.  The
#: "huge" scheme forces the kernels off the narrow int32 fast path.
SCHEMES = {
    "lastz": lastz_default(),
    "hoxd70": hoxd70(),
    "unit": unit(match=2, mismatch=-3, gap_open=5, gap_extend=2),
    "flat": unit(match=1, mismatch=-1, gap_open=1, gap_extend=1),
    "huge": unit(
        match=2_000_000,
        mismatch=-3_000_000,
        gap_open=5_000_000,
        gap_extend=2_000_000,
    ),
}
SCHEME_NAMES = tuple(SCHEMES)

YDROPS = (0, 1, 7, 30, 100, 1000, BIG_Y)
BANDS = (0, 1, 2, 5, 16, 64, 10**6)


def _case_sequences(case_seed, max_len=160):
    """Two random sequences for one case, with degenerate shapes mixed in.

    The same ``case_seed`` always rebuilds the same inputs — it is the
    repro handle printed on failure.
    """
    rng = np.random.default_rng(case_seed)
    kind = case_seed % 8
    if kind == 0:  # empty / near-empty tiles
        m = int(rng.integers(0, 2))
        n = int(rng.integers(0, 2))
    elif kind == 1:  # one-base tiles against normal ones
        m = 1
        n = int(rng.integers(1, max_len))
    else:
        m = int(rng.integers(1, max_len))
        n = int(rng.integers(1, max_len))
    t_codes = rng.integers(0, 5, size=m).astype(np.uint8)
    q_codes = rng.integers(0, 5, size=n).astype(np.uint8)
    if kind == 2:  # homopolymers: every cell ties, stressing tie rules
        t_codes[:] = 0
        q_codes[:] = 0
    elif kind == 3:  # all-ambiguous
        t_codes[:] = 4
        q_codes[:] = 4
    elif kind == 4 and m and n:  # high identity with sprinkled edits
        span = min(m, n)
        q_codes[:span] = t_codes[:span]
        edits = rng.random(n) < 0.1
        q_codes[edits] = (q_codes[edits] + 1) % 4
    return Sequence(t_codes, name="t"), Sequence(q_codes, name="q")


def _repro(kernel, case_seed, scheme_name, **params):
    return (
        f"repro tuple: ({kernel!r}, case_seed={case_seed}, "
        f"scheme={scheme_name!r}, {params})"
    )


def _case_ids(prefix):
    return [f"{prefix}-{i}" for i in range(CASES)]


@pytest.mark.parametrize("case_seed", range(CASES), ids=_case_ids("xd"))
def test_xdrop_matches_oracle(case_seed):
    scheme_name = SCHEME_NAMES[case_seed % len(SCHEME_NAMES)]
    scoring = SCHEMES[scheme_name]
    ydrop = YDROPS[(case_seed // 3) % len(YDROPS)]
    target, query = _case_sequences(case_seed)
    note = _repro("xdrop", case_seed, scheme_name, ydrop=ydrop)

    got = xdrop_extend(target, query, scoring, ydrop)
    want = ref.xdrop_extend_reference(target, query, scoring, ydrop)
    assert got.score == want.score, note
    assert (got.max_i, got.max_j) == (want.max_i, want.max_j), note
    assert got.cells == want.cells, note
    assert got.row_windows == want.row_windows, note
    assert str(got.cigar) == str(want.cigar), note


@pytest.mark.parametrize("case_seed", range(CASES), ids=_case_ids("sw"))
def test_smith_waterman_matches_oracle(case_seed):
    scheme_name = SCHEME_NAMES[case_seed % len(SCHEME_NAMES)]
    scoring = SCHEMES[scheme_name]
    target, query = _case_sequences(case_seed, max_len=100)
    note = _repro("smith_waterman", case_seed, scheme_name)

    got = align_local(target, query, scoring)
    want = ref.align_local_reference(target, query, scoring)
    assert (got is None) == (want is None), note
    if got is not None:
        assert got == want, note
    assert best_score(target, query, scoring) == (
        ref.best_score_reference(target, query, scoring)
    ), note
    if case_seed % 5 == 0:
        assert np.array_equal(
            score_matrix(target, query, scoring),
            ref.score_matrix_reference(target, query, scoring),
        ), note


@pytest.mark.parametrize("case_seed", range(CASES), ids=_case_ids("nw"))
def test_needleman_wunsch_matches_oracle(case_seed):
    scheme_name = SCHEME_NAMES[case_seed % len(SCHEME_NAMES)]
    scoring = SCHEMES[scheme_name]
    target, query = _case_sequences(case_seed, max_len=100)
    note = _repro("needleman_wunsch", case_seed, scheme_name)

    assert align_global(target, query, scoring) == (
        ref.align_global_reference(target, query, scoring)
    ), note
    assert global_score(target, query, scoring) == (
        ref.global_score_reference(target, query, scoring)
    ), note


# Batched BSW compares whole stacks per case, so fewer cases cover the
# same number of random tiles as the other kernels.
BSW_CASES = max(1, CASES // 8)


@pytest.mark.parametrize(
    "case_seed", range(BSW_CASES), ids=_case_ids("bsw")[:BSW_CASES]
)
def test_bsw_batch_matches_oracle(case_seed):
    scheme_name = SCHEME_NAMES[case_seed % len(SCHEME_NAMES)]
    scoring = SCHEMES[scheme_name]
    band = BANDS[(case_seed // 2) % len(BANDS)]
    rng = np.random.default_rng(10_000 + case_seed)
    k = int(rng.integers(0, 12))
    m = int(rng.integers(1, 120))
    n = int(rng.integers(1, 120))
    targets = rng.integers(0, 5, size=(k, m)).astype(np.uint8)
    queries = rng.integers(0, 5, size=(k, n)).astype(np.uint8)
    if case_seed % 7 == 0 and k:
        targets[:] = 0  # homopolymer stack: maximal tie pressure
        queries[:] = 0
    note = _repro("bsw_batch", case_seed, scheme_name, band=band, k=k)

    got = bsw_batch(targets, queries, scoring, band)
    want = ref.bsw_batch_reference(targets, queries, scoring, band)
    for got_arr, want_arr, field in zip(got, want, ("score", "i", "j")):
        assert np.array_equal(got_arr, want_arr), f"{field} {note}"


@pytest.mark.parametrize(
    "case_seed", range(BSW_CASES), ids=_case_ids("bswt")[:BSW_CASES]
)
def test_bsw_tile_matches_oracle(case_seed):
    scheme_name = SCHEME_NAMES[case_seed % len(SCHEME_NAMES)]
    scoring = SCHEMES[scheme_name]
    band = BANDS[(case_seed // 3) % len(BANDS)]
    target, query = _case_sequences(case_seed + 20_000, max_len=120)
    note = _repro("bsw_tile", case_seed, scheme_name, band=band)
    assert bsw_tile(target, query, scoring, band) == (
        ref.bsw_tile_reference(target, query, scoring, band)
    ), note
