"""Karlin-Altschul statistics tests."""

import math

import numpy as np
import pytest

from repro.align import (
    Alignment,
    Cigar,
    ScoreStatistics,
    bit_score,
    estimate_k,
    evalue,
    expected_score,
    gap_length_distribution,
    karlin_lambda,
    score_for_evalue,
    unit,
)
from repro.align.matrices import lastz_default


class TestLambda:
    def test_unit_matrix_known_value(self):
        # match +1 / mismatch -1 uniform background:
        # 1/4 e^l + 3/4 e^-l = 1  =>  e^l = 3  =>  lambda = ln 3
        scoring = unit(match=1, mismatch=-1)
        assert karlin_lambda(scoring) == pytest.approx(
            math.log(3), abs=1e-6
        )

    def test_lastz_default_lambda_positive(self):
        lam = karlin_lambda(lastz_default())
        assert 0.005 < lam < 0.05

    def test_root_property(self):
        scoring = lastz_default()
        lam = karlin_lambda(scoring)
        matrix = scoring.matrix[:4, :4].astype(float)
        total = (np.exp(lam * matrix) / 16.0).sum()
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_positive_expected_score_rejected(self):
        scoring = unit(match=5, mismatch=-1)
        assert expected_score(scoring) > 0
        with pytest.raises(ValueError):
            karlin_lambda(scoring)

    def test_background_validation(self):
        with pytest.raises(ValueError):
            karlin_lambda(unit(), background=np.array([1, 1, 1, 1.0]))

    def test_expected_score_negative_for_stock(self):
        assert expected_score(lastz_default()) < 0
        assert expected_score(unit()) < 0


class TestEvalues:
    def test_evalue_decreases_with_score(self):
        lam, k = 0.05, 0.1
        assert evalue(1000, 10**6, 10**6, lam, k) > evalue(
            2000, 10**6, 10**6, lam, k
        )

    def test_evalue_scales_with_search_space(self):
        lam, k = 0.05, 0.1
        small = evalue(3000, 10**5, 10**5, lam, k)
        big = evalue(3000, 10**7, 10**7, lam, k)
        assert big == pytest.approx(small * 10**4)

    def test_score_for_evalue_inverts(self):
        lam, k = 0.05, 0.1
        score = score_for_evalue(1e-6, 10**6, 10**6, lam, k)
        assert evalue(score, 10**6, 10**6, lam, k) == pytest.approx(1e-6)

    def test_score_for_evalue_validation(self):
        with pytest.raises(ValueError):
            score_for_evalue(0, 10, 10, 0.1, 0.1)

    def test_bit_score_monotone(self):
        assert bit_score(2000, 0.05, 0.1) > bit_score(1000, 0.05, 0.1)

    def test_hf_thresholds_explain_the_fpr_blowup(self):
        """Section VI-B quantified: at H_f = 4000 the genome-scale
        E-value is order-1 (near-zero observed FPR), while dropping to
        H_f = 3000 multiplies the expected false positives by
        ``exp(lambda * 1000)`` — three to four orders of magnitude,
        matching the paper's 0.0007% -> 1.48% FPR jump."""
        scoring = lastz_default()
        lam = karlin_lambda(scoring)
        stats = ScoreStatistics(lam=lam, k=0.1)
        strict = stats.evalue(4000, 10**8, 10**8)
        lenient = stats.evalue(3000, 10**8, 10**8)
        assert strict < 10
        assert lenient / strict > 1000


class TestEstimateK:
    def test_k_in_plausible_range(self, rng):
        scoring = unit(match=1, mismatch=-1, gap_open=2, gap_extend=1)
        k = estimate_k(scoring, rng, sample_length=100, samples=15)
        assert 1e-6 < k < 10


class TestGapDistribution:
    def test_gap_lengths_collected(self):
        cigar = Cigar.parse("10=3D5=2I10=")
        alignment = Alignment(
            target_name="t",
            query_name="q",
            target_start=0,
            target_end=28,
            query_start=0,
            query_end=27,
            score=0,
            cigar=cigar,
        )
        lengths = gap_length_distribution([alignment])
        assert sorted(lengths.tolist()) == [2, 3]

    def test_empty(self):
        assert gap_length_distribution([]).size == 0
