"""Unit tests for scoring schemes and stock matrices."""

import numpy as np
import pytest

from repro.align import (
    HOXD70_MATRIX,
    LASTZ_DEFAULT_MATRIX,
    ScoringScheme,
    hoxd70,
    lastz_default,
    unit,
)
from repro.genome import alphabet


class TestScoringScheme:
    def test_4x4_matrix_expanded_with_n(self):
        scheme = ScoringScheme(
            matrix=LASTZ_DEFAULT_MATRIX, gap_open=430, gap_extend=30
        )
        assert scheme.matrix.shape == (5, 5)
        assert scheme.score(alphabet.N, alphabet.A) == -100
        assert scheme.score(alphabet.N, alphabet.N) == -100

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ScoringScheme(
                matrix=np.zeros((3, 3)), gap_open=10, gap_extend=1
            )

    def test_rejects_negative_penalties(self):
        with pytest.raises(ValueError):
            ScoringScheme(
                matrix=LASTZ_DEFAULT_MATRIX, gap_open=-1, gap_extend=1
            )

    def test_rejects_open_below_extend(self):
        with pytest.raises(ValueError):
            ScoringScheme(
                matrix=LASTZ_DEFAULT_MATRIX, gap_open=5, gap_extend=10
            )

    def test_gap_cost_affine(self):
        scheme = lastz_default()
        assert scheme.gap_cost(0) == 0
        assert scheme.gap_cost(1) == 430
        assert scheme.gap_cost(2) == 460
        assert scheme.gap_cost(10) == 430 + 9 * 30

    def test_row_scores(self):
        scheme = lastz_default()
        codes = np.array([0, 1, 2, 3, 4], dtype=np.uint8)
        row = scheme.row_scores(alphabet.A, codes)
        assert list(row) == [91, -90, -25, -100, -100]

    def test_max_match_score(self):
        assert lastz_default().max_match_score() == 100
        assert unit().max_match_score() == 1


class TestStockMatrices:
    def test_lastz_default_values(self):
        # Table IIa of the paper.
        scheme = lastz_default()
        assert scheme.score(alphabet.A, alphabet.A) == 91
        assert scheme.score(alphabet.C, alphabet.C) == 100
        assert scheme.score(alphabet.A, alphabet.G) == -25  # transition
        assert scheme.score(alphabet.A, alphabet.T) == -100  # transversion
        assert scheme.gap_open == 430
        assert scheme.gap_extend == 30

    def test_matrices_are_symmetric(self):
        assert np.array_equal(LASTZ_DEFAULT_MATRIX, LASTZ_DEFAULT_MATRIX.T)
        assert np.array_equal(HOXD70_MATRIX, HOXD70_MATRIX.T)

    def test_transitions_penalised_less_than_transversions(self):
        for matrix in (LASTZ_DEFAULT_MATRIX, HOXD70_MATRIX):
            assert matrix[0, 2] > matrix[0, 1]  # A-G beats A-C
            assert matrix[1, 3] > matrix[1, 0]  # C-T beats C-A

    def test_hoxd70_constructor(self):
        scheme = hoxd70(gap_open=400, gap_extend=30)
        assert scheme.gap_open == 400
        assert scheme.score(alphabet.A, alphabet.A) == 91

    def test_unit_validation(self):
        with pytest.raises(ValueError):
            unit(match=0)
