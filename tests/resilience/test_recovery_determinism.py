"""The resilience contract: any fault schedule, byte-identical output.

Each test runs a pipeline under a seeded :class:`FaultPlan` (worker
kills, deadline expiries, task errors, cache corruption) and asserts
the result equals the fault-free serial run — while also asserting the
recovery machinery actually fired, so a silently disabled injector
cannot fake a pass.
"""

import numpy as np
import pytest

from repro.core import DarwinWGA
from repro.core.pipeline import align_assemblies
from repro.genome import Assembly, Sequence, make_species_pair
from repro.lastz import LastzAligner
from repro.resilience import FaultPlan, ResilienceOptions, RetryPolicy

WORKLOAD_FIELDS = (
    "seed_hits",
    "filter_tiles",
    "filter_cells",
    "extension_tiles",
    "extension_cells",
    "anchors",
    "absorbed_anchors",
)


def assert_same_result(serial, recovered):
    assert recovered.alignments == serial.alignments
    for field in WORKLOAD_FIELDS:
        assert getattr(recovered.workload, field) == getattr(
            serial.workload, field
        ), field


def fast_options(spec: str) -> ResilienceOptions:
    """A fault plan with retries but no real backoff sleeping."""
    return ResilienceOptions(
        policy=RetryPolicy(max_retries=2, backoff_base=0.0),
        fault_plan=FaultPlan.parse(spec),
    )


@pytest.fixture(scope="module")
def assemblies():
    pair = make_species_pair(7000, 0.4, np.random.default_rng(19))
    t, q = pair.target.genome, pair.query.genome
    target = Assembly(
        name="t",
        chromosomes=[
            Sequence(t.codes[:3500], name="t1"),
            Sequence(t.codes[3500:], name="t2"),
        ],
    )
    query = Assembly(
        name="q",
        chromosomes=[
            Sequence(q.codes[:3500], name="q1"),
            Sequence(q.codes[3500:], name="q2"),
        ],
    )
    return target, query


@pytest.fixture(scope="module")
def serial_darwin(assemblies):
    target, query = assemblies
    return align_assemblies(target, query)


@pytest.fixture(scope="module")
def serial_lastz(assemblies):
    target, query = assemblies
    return align_assemblies(target, query, aligner_class=LastzAligner)


class TestChaosDeterminism:
    @pytest.mark.parametrize(
        "spec",
        ["0:crash=0.5", "1:timeout=0.7", "0:error=0.6"],
    )
    def test_darwin_output_survives_fault_schedule(
        self, assemblies, serial_darwin, spec
    ):
        target, query = assemblies
        options = fast_options(spec)
        recovered = align_assemblies(
            target, query, workers=2, resilience=options
        )
        assert_same_result(serial_darwin, recovered)
        assert options.stats.injected_faults
        assert options.stats.recovered

    def test_lastz_output_survives_fault_schedule(
        self, assemblies, serial_lastz
    ):
        target, query = assemblies
        options = fast_options("3:crash=0.4,error=0.4")
        recovered = align_assemblies(
            target,
            query,
            aligner_class=LastzAligner,
            workers=2,
            resilience=options,
        )
        assert_same_result(serial_lastz, recovered)
        assert options.stats.injected_faults
        assert options.stats.recovered

    def test_corrupt_cache_quarantines_and_matches(
        self, assemblies, serial_darwin, tmp_path
    ):
        from repro.seed import SeedIndexCache

        target, query = assemblies
        options = fast_options("9:corrupt=1.0")
        cache = SeedIndexCache(tmp_path, resilience=options)
        # First run stores both target indexes and corrupts each one.
        first = align_assemblies(
            target, query, index_cache=cache, resilience=options
        )
        assert_same_result(serial_darwin, first)
        assert options.stats.injected_faults.get("corrupt") == 2
        # Second run reloads the corrupted entries: each must be
        # quarantined and rebuilt, never trusted — output identical.
        second = align_assemblies(
            target, query, index_cache=cache, resilience=options
        )
        assert_same_result(serial_darwin, second)
        assert options.stats.quarantined_entries == 2
        assert list(tmp_path.glob("*.quarantined"))

    def test_corrupt_cache_parallel_workers_recover(
        self, assemblies, serial_darwin, tmp_path
    ):
        target, query = assemblies
        options = fast_options("9:corrupt=1.0")
        recovered = align_assemblies(
            target,
            query,
            workers=2,
            index_cache=tmp_path,
            resilience=options,
        )
        assert_same_result(serial_darwin, recovered)
        assert options.stats.injected_faults.get("corrupt")
        # The workers hit the corrupted warm entries and quarantined
        # them in their own processes.
        assert list(tmp_path.glob("*.quarantined"))


class _InterruptRun(RuntimeError):
    """Simulated crash partway through an assembly alignment."""


class _FlakyDarwin(DarwinWGA):
    """Dies before aligning its N-th unit (counts across instances)."""

    fail_at_unit = 3
    _calls = 0

    def align(self, target, query, index=None):
        type(self)._calls += 1
        if type(self)._calls == self.fail_at_unit:
            raise _InterruptRun(
                f"injected crash at unit {type(self)._calls}"
            )
        return super().align(target, query, index=index)


# The manifest pins the aligner by class name; the flaky stand-in must
# journal under the real name for the resumed run to accept it.
_FlakyDarwin.__name__ = "DarwinWGA"


class TestCheckpointResume:
    def test_resume_completes_interrupted_run(
        self, assemblies, serial_darwin, tmp_path
    ):
        target, query = assemblies
        manifest_path = tmp_path / "run.manifest"
        _FlakyDarwin._calls = 0
        with pytest.raises(_InterruptRun):
            align_assemblies(
                target,
                query,
                aligner_class=_FlakyDarwin,
                checkpoint=manifest_path,
            )
        options = ResilienceOptions()
        resumed = align_assemblies(
            target,
            query,
            checkpoint=manifest_path,
            resume=True,
            resilience=options,
        )
        assert_same_result(serial_darwin, resumed)
        assert options.stats.resumed_units == 2
        assert options.stats.journaled_units == 2

    def test_parallel_resume_matches_serial(
        self, assemblies, serial_darwin, tmp_path
    ):
        target, query = assemblies
        manifest_path = tmp_path / "run.manifest"
        _FlakyDarwin._calls = 0
        with pytest.raises(_InterruptRun):
            align_assemblies(
                target,
                query,
                aligner_class=_FlakyDarwin,
                checkpoint=manifest_path,
            )
        options = ResilienceOptions()
        resumed = align_assemblies(
            target,
            query,
            workers=2,
            checkpoint=manifest_path,
            resume=True,
            resilience=options,
        )
        assert_same_result(serial_darwin, resumed)
        assert options.stats.resumed_units == 2

    def test_resume_refuses_changed_inputs(self, assemblies, tmp_path):
        from repro.resilience import ManifestMismatch

        target, query = assemblies
        manifest_path = tmp_path / "run.manifest"
        align_assemblies(target, query, checkpoint=manifest_path)
        with pytest.raises(ManifestMismatch):
            align_assemblies(
                query,  # swapped inputs: digests cannot match
                target,
                checkpoint=manifest_path,
                resume=True,
            )

    def test_checkpointed_run_matches_plain_run(
        self, assemblies, serial_darwin, tmp_path
    ):
        target, query = assemblies
        result = align_assemblies(
            target, query, checkpoint=tmp_path / "run.manifest"
        )
        assert_same_result(serial_darwin, result)
