"""Retry policy: deterministic jitter, backoff shape, stats accounting."""

import pytest

from repro.resilience import (
    RecoveryStats,
    RetryPolicy,
    backoff_delay,
    stable_fraction,
)


class TestStableFraction:
    def test_deterministic_and_bounded(self):
        values = [stable_fraction(7, "crash", f"unit{i}") for i in range(200)]
        assert values == [
            stable_fraction(7, "crash", f"unit{i}") for i in range(200)
        ]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_sensitive_to_every_part(self):
        base = stable_fraction(0, "a", "b")
        assert stable_fraction(1, "a", "b") != base
        assert stable_fraction(0, "x", "b") != base
        assert stable_fraction(0, "a", "c") != base

    def test_roughly_uniform(self):
        values = [stable_fraction("u", i) for i in range(1000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55


class TestBackoffDelay:
    def test_zero_before_first_retry(self):
        policy = RetryPolicy()
        assert backoff_delay(policy, 0) == 0.0
        assert backoff_delay(policy, -1) == 0.0

    def test_disabled_base_disables_backoff(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert backoff_delay(policy, 3) == 0.0

    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            backoff_base=0.01, backoff_multiplier=2.0, jitter=0.0
        )
        assert backoff_delay(policy, 1) == pytest.approx(0.01)
        assert backoff_delay(policy, 2) == pytest.approx(0.02)
        assert backoff_delay(policy, 3) == pytest.approx(0.04)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.01, jitter=0.5, seed=3)
        delays = [backoff_delay(policy, 1, f"k{i}") for i in range(50)]
        assert delays == [
            backoff_delay(policy, 1, f"k{i}") for i in range(50)
        ]
        assert len(set(delays)) > 1  # keys actually spread the delays
        for delay in delays:
            assert 0.005 <= delay <= 0.015

    def test_seed_changes_jitter(self):
        a = RetryPolicy(jitter=0.5, seed=0)
        b = RetryPolicy(jitter=0.5, seed=1)
        assert backoff_delay(a, 1, "k") != backoff_delay(b, 1, "k")


class TestRecoveryStats:
    def test_starts_clean(self):
        stats = RecoveryStats()
        assert not stats.recovered
        assert stats.as_dict()["injected_faults"] == {}

    def test_inject_counts_by_kind(self):
        stats = RecoveryStats()
        stats.inject("crash")
        stats.inject("crash")
        stats.inject("timeout")
        assert stats.injected_faults == {"crash": 2, "timeout": 1}
        # Injection alone is not recovery: only recovery actions count.
        assert not stats.recovered

    def test_recovered_tracks_recovery_paths(self):
        for field in (
            "retries",
            "timeouts",
            "pool_rebuilds",
            "serial_fallbacks",
            "resumed_units",
            "quarantined_entries",
        ):
            stats = RecoveryStats()
            setattr(stats, field, 1)
            assert stats.recovered, field

    def test_merge_accumulates(self):
        a = RecoveryStats(retries=1, serial_fallbacks=2)
        a.inject("error")
        b = RecoveryStats(retries=3, journaled_units=4)
        b.inject("error")
        b.inject("corrupt")
        a.merge(b)
        assert a.retries == 4
        assert a.serial_fallbacks == 2
        assert a.journaled_units == 4
        assert a.injected_faults == {"error": 2, "corrupt": 1}
