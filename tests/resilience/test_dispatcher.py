"""The supervised dispatcher's recovery ladder, against a real pool."""

import time

import pytest

from repro.obs import Tracer
from repro.parallel import ExecutionEngine, ResilientDispatcher
from repro.resilience import (
    FaultPlan,
    ResilienceOptions,
    RetryPolicy,
)


def double(x):
    return 2 * x


def always_raises(x):
    raise ValueError(f"deterministic bug for {x}")


def slow_identity(x):
    time.sleep(0.3)
    return x


def fail_until_third_call(counter_dir, x):
    """Fails on its first two invocations (per counter file), then works."""
    marker = counter_dir / f"calls-{x}"
    calls = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(calls + 1))
    if calls < 2:
        raise RuntimeError(f"transient failure {calls}")
    return x


@pytest.fixture
def engine():
    with ExecutionEngine(2) as engine:
        yield engine


def make_dispatcher(engine, *, rates=None, seed=0, **policy_kwargs):
    options = ResilienceOptions(
        policy=RetryPolicy(**policy_kwargs),
        fault_plan=FaultPlan(seed=seed, rates=rates) if rates else None,
    )
    return ResilientDispatcher(engine, options, sleep=lambda _: None)


class TestHappyPath:
    def test_result_passthrough(self, engine):
        dispatcher = make_dispatcher(engine)
        tickets = [
            dispatcher.submit(double, i, key=f"u{i}") for i in range(8)
        ]
        assert [dispatcher.result(t) for t in tickets] == [
            2 * i for i in range(8)
        ]
        stats = dispatcher.options.stats
        assert not stats.recovered
        assert not dispatcher._outstanding


class TestInjectedFaults:
    def test_error_injection_falls_back_serially(self, engine):
        dispatcher = make_dispatcher(
            engine, rates={"error": 1.0}, max_retries=1
        )
        ticket = dispatcher.submit(double, 21, key="unit")
        assert dispatcher.result(ticket) == 42
        stats = dispatcher.options.stats
        assert stats.retries == 1
        assert stats.serial_fallbacks == 1
        assert stats.injected_faults["error"] == 2

    def test_timeout_injection_never_waits_on_the_future(self, engine):
        dispatcher = make_dispatcher(
            engine, rates={"timeout": 1.0}, max_retries=2
        )
        ticket = dispatcher.submit(double, 5, key="unit")
        assert dispatcher.result(ticket) == 10
        stats = dispatcher.options.stats
        assert stats.timeouts == 3  # every attempt, then fallback
        assert stats.serial_fallbacks == 1

    def test_crash_injection_rebuilds_the_pool(self, engine):
        dispatcher = make_dispatcher(
            engine, rates={"crash": 1.0}, max_retries=1
        )
        ticket = dispatcher.submit(double, 4, key="unit")
        assert dispatcher.result(ticket) == 8
        stats = dispatcher.options.stats
        assert stats.pool_rebuilds >= 1
        assert stats.serial_fallbacks == 1
        # The rebuilt pool is healthy for ordinary work afterwards.
        assert engine.submit(double, 3).result() == 6

    def test_crash_redispatches_all_outstanding_tickets(self, engine):
        dispatcher = make_dispatcher(
            engine, rates={"crash": 0.4}, seed=13, max_retries=3
        )
        tickets = [
            dispatcher.submit(double, i, key=f"u{i}") for i in range(10)
        ]
        assert [dispatcher.result(t) for t in tickets] == [
            2 * i for i in range(10)
        ]
        assert dispatcher.options.stats.pool_rebuilds >= 1
        assert not dispatcher._outstanding


class TestRealFaults:
    def test_transient_task_error_retries_to_success(self, engine, tmp_path):
        dispatcher = make_dispatcher(engine, max_retries=2)
        ticket = dispatcher.submit(
            fail_until_third_call, tmp_path, 7, key="flaky"
        )
        assert dispatcher.result(ticket) == 7
        stats = dispatcher.options.stats
        assert stats.retries == 2
        assert stats.serial_fallbacks == 0

    def test_deterministic_bug_reraises_from_fallback(self, engine):
        dispatcher = make_dispatcher(engine, max_retries=1)
        ticket = dispatcher.submit(always_raises, 9, key="buggy")
        with pytest.raises(ValueError, match="deterministic bug"):
            dispatcher.result(ticket)
        assert dispatcher.options.stats.serial_fallbacks == 1

    def test_real_deadline_expires_and_falls_back(self, engine):
        dispatcher = make_dispatcher(engine, max_retries=1, timeout=0.02)
        ticket = dispatcher.submit(slow_identity, 3, key="slow")
        assert dispatcher.result(ticket) == 3
        stats = dispatcher.options.stats
        assert stats.timeouts == 2
        assert stats.serial_fallbacks == 1


class TestPollRecovery:
    def test_poll_false_until_settled(self, engine):
        dispatcher = make_dispatcher(engine)
        ticket = dispatcher.submit(slow_identity, 1, key="slow")
        assert not dispatcher.poll(ticket)
        assert dispatcher.result(ticket) == 1

    def test_poll_surfaces_broken_pool_and_redispatches(self, engine):
        """Regression: a future settled with BrokenProcessPool must not
        poll True — a streamed caller would then drain a dead pool.
        poll() runs the same rebuild-and-redispatch submit() does."""
        dispatcher = make_dispatcher(
            engine, rates={"crash": 1.0}, max_retries=1
        )
        ticket = dispatcher.submit(double, 6, key="unit")
        broken_future = ticket.future
        # Wait for the injected crash to land (the future settles with
        # BrokenProcessPool), without invoking any recovery path.
        from concurrent.futures.process import BrokenProcessPool

        error = broken_future.exception(timeout=30)
        assert isinstance(error, BrokenProcessPool)
        dispatcher.poll(ticket)
        stats = dispatcher.options.stats
        assert stats.pool_rebuilds >= 1
        # Recovery replaced the dead future; no retry was charged (the
        # substrate died, not the attempt).
        assert ticket.future is not broken_future
        assert ticket.attempt == 0
        # The ladder still completes the work.
        assert dispatcher.result(ticket) == 12
        assert not dispatcher._outstanding


class TestHangEscalation:
    def test_hang_injection_escalates_through_the_sentinel(self):
        """A SIGSTOP-style hang (worker alive, silent, never returns)
        is invisible to futures; only the heartbeat sentinel sees it."""
        from repro.obs import HeartbeatMonitor, TelemetryOptions
        from repro.parallel import ResilientDispatcher

        telemetry = TelemetryOptions(heartbeat_interval=0.05)
        bus = telemetry.ensure_bus()
        monitor = HeartbeatMonitor(bus, deadline=0.4)
        options = ResilienceOptions(
            policy=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan(seed=3, rates={"hang": 1.0}),
            liveness=monitor,
        )
        with ExecutionEngine(
            2, resilience=options, telemetry=telemetry
        ) as engine:
            dispatcher = ResilientDispatcher(
                engine, options, sleep=lambda _: None
            )
            ticket = dispatcher.submit(double, 9, key="unit")
            assert dispatcher.result(ticket) == 18
        telemetry.close()
        stats = options.stats
        assert stats.hangs >= 1
        assert monitor.detections >= 1
        assert stats.pool_rebuilds >= 1
        # Every attempt hangs (rate 1.0), so the budget exhausts into
        # the serial fallback — correctness never depended on the pool.
        assert stats.serial_fallbacks == 1
        assert stats.injected_faults["hang"] >= 1


class TestTracing:
    def test_recovery_spans_record_actions(self, engine):
        tracer = Tracer()
        dispatcher = make_dispatcher(
            engine, rates={"error": 1.0}, max_retries=1
        )
        ticket = dispatcher.submit(double, 1, key="unit")
        dispatcher.result(ticket, tracer=tracer)
        actions = [
            span.attrs["action"]
            for span in tracer.walk()
            if span.name == "recovery"
        ]
        assert actions == ["retry", "serial_fallback"]


class TestEngineIntegration:
    def test_engine_dispatch_uses_its_options(self):
        options = ResilienceOptions(
            policy=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan(seed=2, rates={"error": 1.0}),
        )
        with ExecutionEngine(2, resilience=options) as engine:
            ticket = engine.dispatch(double, 8, key="unit")
            assert engine.result(ticket) == 16
        assert options.stats.serial_fallbacks == 1
