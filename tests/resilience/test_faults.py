"""Fault plans: parsing, deterministic scheduling, file corruption."""

import pytest

from repro.resilience import (
    DEFAULT_RATES,
    FAULT_KINDS,
    FaultPlan,
    corrupt_file,
)


class TestFaultPlanParse:
    def test_seed_only_uses_default_rates(self):
        plan = FaultPlan.parse("7")
        assert plan.seed == 7
        assert dict(plan.rates) == DEFAULT_RATES

    def test_explicit_rates(self):
        plan = FaultPlan.parse("3:crash=0.5,corrupt=1.0")
        assert plan.seed == 3
        assert dict(plan.rates) == {"crash": 0.5, "corrupt": 1.0}

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.parse("lots")

    def test_rejects_malformed_rate(self):
        with pytest.raises(ValueError, match="kind=rate"):
            FaultPlan.parse("1:crash")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("1:meteor=0.5")

    def test_hang_is_a_known_kind(self):
        assert "hang" in FAULT_KINDS
        plan = FaultPlan.parse("4:hang=0.5")
        assert dict(plan.rates) == {"hang": 0.5}

    def test_hang_is_not_in_default_rates(self):
        # A bare seed must never schedule hangs: without a liveness
        # sentinel a hung worker blocks until the task deadline, which
        # default chaos runs do not set.
        assert "hang" not in DEFAULT_RATES


class TestFaultPlanDecide:
    def test_deterministic(self):
        plan = FaultPlan(seed=11, rates={"crash": 0.3})
        decisions = [plan.decide("crash", f"u{i}") for i in range(100)]
        assert decisions == [
            plan.decide("crash", f"u{i}") for i in range(100)
        ]
        assert any(decisions) and not all(decisions)

    def test_rate_extremes(self):
        plan = FaultPlan(seed=0, rates={"crash": 1.0, "error": 0.0})
        assert plan.decide("crash", "anything")
        assert not plan.decide("error", "anything")
        assert not plan.decide("timeout", "unlisted kind never fires")

    def test_attempt_axis_rerolls(self):
        plan = FaultPlan(seed=5, rates={"timeout": 0.5})
        decisions = {
            plan.decide("timeout", "unit", attempt) for attempt in range(20)
        }
        assert decisions == {True, False}

    def test_seed_changes_schedule(self):
        keys = [f"u{i}" for i in range(64)]
        a = FaultPlan(seed=1, rates={"crash": 0.5})
        b = FaultPlan(seed=2, rates={"crash": 0.5})
        assert [a.decide("crash", k) for k in keys] != [
            b.decide("crash", k) for k in keys
        ]


class TestCorruptFile:
    def test_flips_one_byte_deterministically(self, tmp_path):
        path = tmp_path / "blob"
        payload = bytes(range(256))
        path.write_bytes(payload)
        offset = corrupt_file(path, seed=9)
        corrupted = path.read_bytes()
        assert len(corrupted) == len(payload)
        diffs = [
            i for i, (a, b) in enumerate(zip(payload, corrupted)) if a != b
        ]
        assert diffs == [offset]
        # Same seed and size -> same offset on a fresh copy.
        path.write_bytes(payload)
        assert corrupt_file(path, seed=9) == offset

    def test_empty_file_untouched(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        assert corrupt_file(path, seed=1) is None
        assert path.read_bytes() == b""
