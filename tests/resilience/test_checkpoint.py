"""Run manifests: journal/replay, torn tails, digest verification."""

import numpy as np
import pytest

from repro.genome import markov_genome
from repro.resilience import (
    ManifestError,
    ManifestMismatch,
    RunManifest,
    config_digest,
    sequences_digest,
)


def make_manifest(path, **overrides):
    fields = dict(
        aligner="DarwinWGA", config="c0", target="t0", query="q0"
    )
    fields.update(overrides)
    return RunManifest.create(path, **fields)


class TestDigests:
    def test_config_digest_tracks_values(self):
        from repro.core import DarwinWGAConfig

        base = config_digest(DarwinWGAConfig())
        assert config_digest(DarwinWGAConfig()) == base
        assert (
            config_digest(DarwinWGAConfig(both_strands=False)) != base
        )

    def test_sequences_digest_tracks_content_order_and_names(self, rng):
        a = markov_genome(300, rng, name="a")
        b = markov_genome(300, rng, name="b")
        base = sequences_digest([a, b])
        assert sequences_digest([a, b]) == base
        assert sequences_digest([b, a]) != base
        renamed = markov_genome(300, np.random.default_rng(0), name="a2")
        assert sequences_digest([a, renamed]) != base


class TestRunManifest:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = make_manifest(path)
        manifest.record("0:t|0:q", {"alignments": [1, 2]})
        manifest.record("0:t|1:q", {"alignments": []})
        loaded = RunManifest.load(path)
        assert len(loaded) == 2
        assert loaded.units == ["0:t|0:q", "0:t|1:q"]
        assert "0:t|0:q" in loaded
        assert loaded.result_for("0:t|0:q") == {"alignments": [1, 2]}
        assert loaded.skipped_records == 0

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = make_manifest(path)
        manifest.record("u1", "first")
        manifest.record("u2", "second")
        text = path.read_text()
        # Simulate a crash mid-write of the final record.
        path.write_text(text[: len(text) - 40])
        loaded = RunManifest.load(path)
        assert loaded.units == ["u1"]
        assert loaded.skipped_records == 1

    def test_corrupted_payload_is_skipped(self, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = make_manifest(path)
        manifest.record("u1", "value")
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"payload": "', '"payload": "AAAA')
        path.write_text("\n".join(lines) + "\n")
        loaded = RunManifest.load(path)
        assert loaded.units == []
        assert loaded.skipped_records == 1

    def test_rejects_missing_or_bad_header(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_text("")
        with pytest.raises(ManifestError, match="empty"):
            RunManifest.load(empty)
        garbled = tmp_path / "garbled"
        garbled.write_text("not json\n")
        with pytest.raises(ManifestError, match="header"):
            RunManifest.load(garbled)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "run.manifest"
        make_manifest(path)
        text = path.read_text().replace('"version": 1', '"version": 99')
        path.write_text(text)
        with pytest.raises(ManifestError, match="version"):
            RunManifest.load(path)

    def test_verify_refuses_different_run(self, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = make_manifest(path)
        manifest.verify(
            aligner="DarwinWGA", config="c0", target="t0", query="q0"
        )
        with pytest.raises(ManifestMismatch, match="config"):
            manifest.verify(
                aligner="DarwinWGA",
                config="different",
                target="t0",
                query="q0",
            )
        with pytest.raises(ManifestMismatch, match="target"):
            manifest.verify(
                aligner="DarwinWGA",
                config="c0",
                target="different",
                query="q0",
            )

    def test_attach_resume_loads_and_verifies(self, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = make_manifest(path)
        manifest.record("u1", "value")
        resumed = RunManifest.attach(
            path,
            aligner="DarwinWGA",
            config="c0",
            target="t0",
            query="q0",
            resume=True,
        )
        assert resumed.units == ["u1"]
        with pytest.raises(ManifestMismatch):
            RunManifest.attach(
                path,
                aligner="DarwinWGA",
                config="changed",
                target="t0",
                query="q0",
                resume=True,
            )

    def test_attach_resume_without_file_creates(self, tmp_path):
        path = tmp_path / "fresh.manifest"
        manifest = RunManifest.attach(
            path,
            aligner="DarwinWGA",
            config="c0",
            target="t0",
            query="q0",
            resume=True,
        )
        assert path.exists()
        assert len(manifest) == 0

    def test_attach_without_resume_truncates(self, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = make_manifest(path)
        manifest.record("u1", "value")
        fresh = RunManifest.attach(
            path,
            aligner="DarwinWGA",
            config="c0",
            target="t0",
            query="q0",
            resume=False,
        )
        assert len(fresh) == 0
        assert len(RunManifest.load(path)) == 0
